"""Unit and property-based tests for repro.common.counters."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.counters import (
    SaturatingCounter,
    SignedCounterArray,
    SignedSaturatingCounter,
    UnsignedCounterArray,
)


class TestSaturatingCounter:
    def test_initial_value_is_midpoint(self):
        counter = SaturatingCounter(2)
        assert counter.value == 2
        assert counter.predict() is True

    def test_explicit_initial_value(self):
        assert SaturatingCounter(3, initial=1).value == 1

    def test_saturates_high(self):
        counter = SaturatingCounter(2, initial=3)
        counter.update(True)
        assert counter.value == 3
        assert counter.is_saturated()

    def test_saturates_low(self):
        counter = SaturatingCounter(2, initial=0)
        counter.update(False)
        assert counter.value == 0
        assert counter.is_saturated()

    def test_prediction_threshold(self):
        counter = SaturatingCounter(2, initial=1)
        assert counter.predict() is False
        counter.update(True)
        assert counter.predict() is True

    def test_reset(self):
        counter = SaturatingCounter(2, initial=3)
        counter.reset()
        assert counter.value == counter.midpoint

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            SaturatingCounter(0)

    def test_invalid_initial(self):
        with pytest.raises(ValueError):
            SaturatingCounter(2, initial=4)

    @given(st.lists(st.booleans(), max_size=200), st.integers(min_value=1, max_value=6))
    def test_counter_always_in_range(self, outcomes, bits):
        counter = SaturatingCounter(bits)
        for outcome in outcomes:
            counter.update(outcome)
            assert 0 <= counter.value <= counter.maximum


class TestSignedSaturatingCounter:
    def test_initial_prediction_is_taken(self):
        assert SignedSaturatingCounter(3).predict() is True

    def test_range(self):
        counter = SignedSaturatingCounter(3)
        assert counter.minimum == -4
        assert counter.maximum == 3

    def test_saturation_both_ends(self):
        counter = SignedSaturatingCounter(3)
        for _ in range(10):
            counter.update(True)
        assert counter.value == 3
        for _ in range(20):
            counter.update(False)
        assert counter.value == -4
        assert counter.is_saturated()

    def test_invalid_initial(self):
        with pytest.raises(ValueError):
            SignedSaturatingCounter(3, initial=10)

    @given(st.lists(st.booleans(), max_size=200), st.integers(min_value=2, max_value=8))
    def test_signed_counter_always_in_range(self, outcomes, bits):
        counter = SignedSaturatingCounter(bits)
        for outcome in outcomes:
            counter.update(outcome)
            assert counter.minimum <= counter.value <= counter.maximum


class TestUnsignedCounterArray:
    def test_length_and_init(self):
        array = UnsignedCounterArray(8, 2)
        assert len(array) == 8
        assert all(value == 2 for value in array)

    def test_update_and_predict(self):
        array = UnsignedCounterArray(4, 2, initial=0)
        assert array.predict(1) is False
        array.update(1, True)
        array.update(1, True)
        assert array.predict(1) is True
        assert array[1] == 2

    def test_confidence(self):
        array = UnsignedCounterArray(4, 2, initial=0)
        assert array.confidence(0) == 1  # strongly not taken
        array.set(0, 2)
        assert array.confidence(0) == 0  # weakly taken

    def test_set_clamps(self):
        array = UnsignedCounterArray(4, 2)
        array.set(0, 99)
        assert array[0] == 3
        array.set(0, -5)
        assert array[0] == 0

    def test_reset(self):
        array = UnsignedCounterArray(4, 2, initial=3)
        array.reset(0)
        assert all(value == 0 for value in array)

    def test_storage_bits(self):
        assert UnsignedCounterArray(1024, 2).storage_bits() == 2048

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            UnsignedCounterArray(0, 2)

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=15), st.booleans()), max_size=200
        )
    )
    def test_array_counters_stay_in_range(self, updates):
        array = UnsignedCounterArray(16, 3)
        for index, taken in updates:
            array.update(index, taken)
            assert 0 <= array[index] <= array.maximum


class TestSignedCounterArray:
    def test_initial_zero(self):
        array = SignedCounterArray(8, 6)
        assert all(value == 0 for value in array)
        assert array.predict(0) is True

    def test_update_toward_not_taken(self):
        array = SignedCounterArray(8, 6)
        array.update(3, False)
        assert array[3] == -1
        assert array.predict(3) is False

    def test_set_clamps(self):
        array = SignedCounterArray(4, 4)
        array.set(0, 100)
        assert array[0] == 7
        array.set(0, -100)
        assert array[0] == -8

    def test_reset_value(self):
        array = SignedCounterArray(4, 4)
        array.reset(3)
        assert all(value == 3 for value in array)

    def test_storage_bits(self):
        assert SignedCounterArray(512, 6).storage_bits() == 3072

    def test_invalid_initial(self):
        with pytest.raises(ValueError):
            SignedCounterArray(4, 4, initial=100)

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=7), st.booleans()), max_size=300
        )
    )
    def test_signed_array_counters_stay_in_range(self, updates):
        array = SignedCounterArray(8, 5)
        for index, taken in updates:
            array.update(index, taken)
            assert array.minimum <= array[index] <= array.maximum

    @given(st.integers(min_value=1, max_value=40))
    def test_saturation_after_many_updates(self, count):
        array = SignedCounterArray(2, 4)
        for _ in range(count):
            array.update(0, True)
        assert array[0] == min(count, array.maximum)
