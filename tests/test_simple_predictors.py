"""Tests for the baseline predictors (static, bimodal, gshare, perceptron)."""

from __future__ import annotations

import pytest

from repro.predictors.simple import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    GSharePredictor,
    PerceptronPredictor,
    StaticBackwardTakenPredictor,
)
from repro.sim.engine import simulate
from repro.trace.branch import BranchRecord, conditional_branch
from repro.trace.trace import Trace


def _run(predictor, records):
    """Drive a predictor over raw records; return the misprediction count."""
    mispredictions = 0
    for record in records:
        prediction = predictor.predict(record)
        predictor.update(record, prediction)
        if prediction != record.taken:
            mispredictions += 1
    return mispredictions


class TestStaticPredictors:
    def test_always_taken(self):
        predictor = AlwaysTakenPredictor()
        records = [conditional_branch(0x10, 0x20, taken=bool(i % 2)) for i in range(10)]
        assert _run(predictor, records) == 5
        assert predictor.storage_bits() == 0

    def test_backward_taken_heuristic(self):
        predictor = StaticBackwardTakenPredictor()
        backward = BranchRecord(pc=0x100, target=0x50, taken=True)
        forward = BranchRecord(pc=0x100, target=0x200, taken=True)
        assert predictor.predict(backward) is True
        assert predictor.predict(forward) is False


class TestBimodalPredictor:
    def test_learns_biased_branch(self):
        predictor = BimodalPredictor(entries=64)
        records = [conditional_branch(0x40, 0x80, taken=True)] * 50
        assert _run(predictor, records) <= 2

    def test_learns_two_independent_branches(self):
        predictor = BimodalPredictor(entries=1024)
        records = []
        for _ in range(40):
            records.append(conditional_branch(0x40, 0x80, taken=True))
            records.append(conditional_branch(0x4000, 0x4040, taken=False))
        assert _run(predictor, records) <= 4

    def test_cannot_learn_alternation(self, alternating_records):
        predictor = BimodalPredictor(entries=64)
        mispredictions = _run(predictor, alternating_records)
        assert mispredictions >= len(alternating_records) * 0.4

    def test_storage_bits(self):
        assert BimodalPredictor(entries=4096, counter_bits=2).storage_bits() == 8192

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=100)


class TestGSharePredictor:
    def test_learns_alternation_via_history(self, alternating_records):
        predictor = GSharePredictor(entries=1024, history_length=8)
        mispredictions = _run(predictor, alternating_records)
        # After warm-up the T/N/T/N pattern is fully predictable from history.
        assert mispredictions <= 10

    def test_learns_history_correlated_branch(self):
        predictor = GSharePredictor(entries=2048, history_length=6)
        records = []
        import random

        rng = random.Random(0)
        last = False
        for _ in range(400):
            source = rng.random() < 0.5
            records.append(conditional_branch(0x100, 0x140, taken=source))
            records.append(conditional_branch(0x200, 0x240, taken=not source))
            last = source
        mispredictions = _run(predictor, records)
        # The correlated branch becomes predictable; the source stays random,
        # so the overall misprediction rate must fall clearly below 50 %.
        assert mispredictions < 800 * 0.45

    def test_storage_accounts_for_history(self):
        predictor = GSharePredictor(entries=1024, history_length=12, counter_bits=2)
        assert predictor.storage_bits() == 1024 * 2 + 12

    def test_invalid_history_rejected(self):
        with pytest.raises(ValueError):
            GSharePredictor(history_length=0)


class TestPerceptronPredictor:
    def test_learns_biased_branch(self):
        predictor = PerceptronPredictor(entries=64, history_length=12)
        records = [conditional_branch(0x40, 0x80, taken=True)] * 100
        assert _run(predictor, records) <= 5

    def test_learns_linearly_separable_correlation(self):
        """Outcome = previous outcome of another branch: linearly separable."""
        import random

        rng = random.Random(7)
        predictor = PerceptronPredictor(entries=64, history_length=8)
        records = []
        for _ in range(600):
            source = rng.random() < 0.5
            records.append(conditional_branch(0x300, 0x340, taken=source))
            records.append(conditional_branch(0x500, 0x540, taken=source))
        mispredictions = _run(predictor, records)
        # The follower branch is predictable, the source is not: well below 50%.
        assert mispredictions < 600 * 0.70

    def test_storage_bits(self):
        predictor = PerceptronPredictor(entries=16, history_length=10, weight_bits=8)
        assert predictor.storage_bits() == 16 * 11 * 8 + 10

    def test_invalid_history_rejected(self):
        with pytest.raises(ValueError):
            PerceptronPredictor(history_length=0)


class TestSimplePredictorsOnTraces:
    def test_bimodal_beats_always_taken_on_easy_trace(self, easy_trace):
        bimodal = simulate(BimodalPredictor(), easy_trace)
        always = simulate(AlwaysTakenPredictor(), easy_trace)
        assert bimodal.mpki < always.mpki

    def test_gshare_beats_always_taken_on_local_trace(self, local_trace):
        always = simulate(AlwaysTakenPredictor(), local_trace)
        gshare = simulate(GSharePredictor(entries=4096, history_length=12), local_trace)
        assert gshare.mpki < always.mpki

    def test_results_are_reproducible(self, easy_trace):
        first = simulate(BimodalPredictor(), easy_trace)
        second = simulate(BimodalPredictor(), easy_trace)
        assert first.mispredictions == second.mispredictions
