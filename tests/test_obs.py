"""Tests for the observability layer (:mod:`repro.obs`).

Unit coverage for the metrics registry, the structured event log and the
per-cell timing artifacts, then the integrated surfaces: the HTTP status
server answering live during a real two-worker distributed sweep (with
results still bit-identical to serial), the same surface polled while a
worker process is hard-killed under ``REPRO_CHAOS``, the windowed
ProgressPrinter ETA, ``repro store ls --summary`` and ``repro top``.
"""

from __future__ import annotations

import io
import json
import os
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.api.experiment import Experiment
from repro.api.specs import PredictorSpec
from repro.cli import main
from repro.common.progress import ProgressPrinter
from repro.dist import Coordinator, Worker
from repro.obs import (
    EventLog,
    MetricsRegistry,
    TimingLog,
    default_registry,
    event_log_for,
    reset_default_registry,
    summarize_timings,
    timing_log_for,
)
from repro.obs.http import StatusServer
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.obs.top import render, run_top, sparkline
from repro.store import ResultStore, result_to_dict
from repro.workloads.suites import generate_suite

BENCHMARKS = ["SPEC2K6-00", "SPEC2K6-04"]
LENGTH = 300


@pytest.fixture(scope="module")
def traces():
    return generate_suite(
        "cbp4like", target_conditional_branches=LENGTH, benchmarks=BENCHMARKS
    )


@pytest.fixture(scope="module")
def specs():
    return [
        PredictorSpec.from_named("tage-gsc", profile="small"),
        PredictorSpec.from_named("tage-gsc", profile="small", imli_sic=True),
    ]


@pytest.fixture(scope="module")
def serial_results(specs, traces):
    return Experiment(specs, traces=traces, profile="small", store=False).run()


def _get_json(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))


def _get_text(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.headers.get("Content-Type"), response.read().decode("utf-8")


def _assert_bit_identical(runs, serial_results, specs):
    for spec in specs:
        ours = runs[spec.label].results
        theirs = serial_results.run_for(spec.label).results
        assert len(ours) == len(theirs)
        for mine, ref in zip(ours, theirs):
            assert result_to_dict(mine) == result_to_dict(ref)


def _parse_prometheus(body: str):
    """Well-formedness check: returns {name: value} for sample lines."""
    samples = {}
    for line in body.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            assert line.startswith("# HELP ") or line.startswith("# TYPE ")
            continue
        name, value = line.rsplit(" ", 1)
        float(value.replace("+Inf", "inf"))  # every sample value is numeric
        samples[name] = value
    return samples


class TestMetrics:
    def test_counter_and_gauge(self):
        counter = Counter("c_total", "help")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5
        with pytest.raises(ValueError):
            counter.inc(-1)
        gauge = Gauge("g")
        gauge.set(3)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 2

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Counter("has space")
        with pytest.raises(ValueError):
            Counter("9starts_with_digit")

    def test_histogram_buckets_are_cumulative(self):
        histogram = Histogram("h_seconds", buckets=[0.1, 1.0, 10.0])
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 5
        assert snap["buckets"]["0.1"] == 1
        assert snap["buckets"]["1"] == 3
        assert snap["buckets"]["10"] == 4
        assert snap["buckets"]["+Inf"] == 5
        assert snap["sum"] == pytest.approx(56.05)

    def test_registry_get_or_create_and_kind_clash(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total")
        assert registry.counter("x_total") is first
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_disabled_registry_hands_out_null_metrics(self):
        registry = MetricsRegistry(enabled=False)
        metric = registry.counter("x_total")
        metric.inc(100)
        assert metric.value() == 0.0
        assert registry.render_prometheus() == ""
        assert registry.snapshot() == {}

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("cells_total", "Cells completed.").inc(3)
        registry.histogram("walltime_seconds", buckets=[1.0]).observe(0.5)
        body = registry.render_prometheus()
        assert "# HELP cells_total Cells completed." in body
        assert "# TYPE cells_total counter" in body
        assert "cells_total 3" in body
        assert 'walltime_seconds_bucket{le="1"} 1' in body
        assert 'walltime_seconds_bucket{le="+Inf"} 1' in body
        assert "walltime_seconds_count 1" in body
        assert body.endswith("\n")

    def test_env_gate_disables_default_registry(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "off")
        reset_default_registry()
        try:
            registry = default_registry()
            registry.counter("gated_total").inc()
            assert registry.render_prometheus() == ""
        finally:
            monkeypatch.delenv("REPRO_TELEMETRY")
            reset_default_registry()


class TestEventLog:
    def test_emit_appends_tagged_json_lines(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl", component="tester")
        log.emit("started", answer=42)
        log.emit("stopped", component="other")
        lines = [
            json.loads(line)
            for line in (tmp_path / "events.jsonl").read_text().splitlines()
        ]
        assert [line["event"] for line in lines] == ["started", "stopped"]
        assert lines[0]["component"] == "tester"
        assert lines[0]["answer"] == 42
        assert lines[1]["component"] == "other"
        assert all("ts" in line for line in lines)

    def test_rotation_keeps_two_bounded_files(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path, max_bytes=200)
        for index in range(50):
            log.emit("tick", index=index)
        assert path.stat().st_size <= 200
        backup = tmp_path / "events.jsonl.1"
        assert backup.exists()
        # Both files still parse line-by-line.
        for file in (path, backup):
            for line in file.read_text().splitlines():
                json.loads(line)

    def test_event_log_for_env_gates(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_LOG", "0")
        assert event_log_for(tmp_path) is None
        redirected = tmp_path / "custom.log"
        monkeypatch.setenv("REPRO_OBS_LOG", str(redirected))
        log = event_log_for(None, component="x")
        assert log is not None and log.path == redirected
        monkeypatch.delenv("REPRO_OBS_LOG")
        assert event_log_for(None) is None
        default = event_log_for(tmp_path)
        assert default is not None
        assert default.path == tmp_path / "repro.obs.log"


class TestTimingLog:
    def test_record_schema_and_summary(self, tmp_path):
        log = TimingLog(tmp_path / "timings.jsonl", component="tester")
        log.record(
            backend="serial",
            label="a",
            trace="t0",
            phases={"simulate": 0.25, "store_write": 0.01},
        )
        log.record(
            backend="pool", label="b", trace="t1", phases={"simulate": 1.5}, batch=4
        )
        lines = [
            json.loads(line)
            for line in (tmp_path / "timings.jsonl").read_text().splitlines()
        ]
        assert len(lines) == 2
        assert lines[0]["component"] == "tester"
        assert lines[0]["backend"] == "serial"
        assert lines[0]["phases"] == {"simulate": 0.25, "store_write": 0.01}
        assert lines[0]["batch"] == 1
        assert lines[1]["batch"] == 4
        summary = log.summary()
        assert summary["records"] == 2
        assert summary["phases"]["simulate"]["count"] == 2
        assert summary["phases"]["store_write"]["count"] == 1

    def test_invalid_phases_are_filtered(self, tmp_path):
        log = TimingLog(tmp_path / "timings.jsonl", component="tester")
        log.record(
            backend="serial",
            label="a",
            trace="t",
            phases={"simulate": -1.0, "junk": "text"},
        )
        assert not (tmp_path / "timings.jsonl").exists()
        assert log.records_written == 0

    def test_write_summary_skips_when_unchanged(self, tmp_path):
        log = TimingLog(tmp_path / "timings.jsonl", component="tester")
        log.record(backend="serial", label="a", trace="t", phases={"simulate": 0.1})
        target = log.write_summary()
        assert target is not None and target.name == "timings_summary.json"
        assert json.loads(target.read_text())["records"] == 1
        assert log.write_summary() is None  # nothing new since the flush
        log.record(backend="serial", label="b", trace="t", phases={"simulate": 0.2})
        assert log.write_summary() is not None

    def test_timing_log_for_gates(self, tmp_path, monkeypatch):
        assert timing_log_for(None, "x") is None
        monkeypatch.setenv("REPRO_TIMINGS", "0")
        assert timing_log_for(tmp_path, "x") is None
        monkeypatch.delenv("REPRO_TIMINGS")
        log = timing_log_for(tmp_path, "x")
        assert log is not None and log.path == tmp_path / "timings.jsonl"

    def test_summarize_timings_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "timings.jsonl"
        log = TimingLog(path, component="a")
        log.record(backend="serial", label="l", trace="t", phases={"simulate": 0.5})
        other = TimingLog(path, component="b")
        other.record(backend="dist", label="l", trace="t", phases={"total": 2.0})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write('{"no_phases": true}\n')
        summary = summarize_timings(path)
        assert summary["records"] == 2
        assert summary["skipped"] == 2
        assert summary["by_component"] == {"a": 1, "b": 1}
        assert summary["phases"]["simulate"]["count"] == 1
        assert summary["phases"]["total"]["count"] == 1


class TestRunnerTimings:
    """Serial and pool experiments leave timing artifacts next to the store."""

    def _records(self, store_dir: Path):
        return [
            json.loads(line)
            for line in (store_dir / "timings.jsonl").read_text().splitlines()
        ]

    def test_serial_experiment_records_phases(self, tmp_path, specs, traces):
        store_dir = tmp_path / "store"
        experiment = Experiment(
            specs, traces=traces, profile="small", store=store_dir
        )
        experiment.run()
        experiment.close()
        records = self._records(store_dir)
        assert len(records) == len(specs) * len(traces)
        for record in records:
            assert record["component"] == "runner"
            assert record["backend"] == "serial"
            assert "simulate" in record["phases"]
            assert "store_write" in record["phases"]
        trace_names = {record["trace"] for record in records}
        assert trace_names == {trace.name for trace in traces}
        summary = json.loads((store_dir / "timings_summary.json").read_text())
        assert summary["records"] == len(records)
        assert summary["phases"]["simulate"]["count"] == len(records)

    def test_pool_experiment_records_phases(self, tmp_path, specs, traces):
        store_dir = tmp_path / "store"
        experiment = Experiment(
            specs, traces=traces, profile="small", store=store_dir, jobs=2
        )
        experiment.run()
        experiment.close()
        records = self._records(store_dir)
        assert len(records) == len(specs) * len(traces)
        assert {record["backend"] for record in records} == {"pool"}
        assert (store_dir / "timings_summary.json").exists()

    def test_timings_env_disables_capture(self, tmp_path, specs, traces, monkeypatch):
        monkeypatch.setenv("REPRO_TIMINGS", "0")
        store_dir = tmp_path / "store"
        experiment = Experiment(
            specs, traces=traces, profile="small", store=store_dir
        )
        experiment.run()
        experiment.close()
        assert not (store_dir / "timings.jsonl").exists()

    def test_results_identical_with_and_without_timings(
        self, tmp_path, specs, traces, serial_results
    ):
        experiment = Experiment(
            specs, traces=traces, profile="small", store=tmp_path / "store"
        )
        runs = experiment.run().runs
        experiment.close()
        _assert_bit_identical(runs, serial_results, specs)


class TestStatusSurface:
    """The HTTP surface answers accurately during a live two-worker sweep."""

    def test_live_endpoints_during_dist_sweep(
        self, tmp_path, specs, traces, serial_results
    ):
        store_dir = tmp_path / "store"
        coordinator = Coordinator(store=ResultStore(store_dir))
        address = coordinator.start()
        server = StatusServer(coordinator, store=coordinator.store, port=0)
        host, port = server.start()
        base = f"http://{host}:{port}"
        try:
            # Before any job: empty but well-formed.
            status = _get_json(f"{base}/status")
            assert status["jobs_total"] == 0
            assert status["cells_total"] == 0
            assert status["protocol"] == 1
            job = coordinator.submit(specs, traces)
            workers = [
                Worker(address[0], address[1], name=f"obs-w{i}", reconnect=0.75)
                for i in range(2)
            ]
            threads = [
                threading.Thread(target=worker.run, daemon=True)
                for worker in workers
            ]
            for thread in threads:
                thread.start()
            # Poll every endpoint while the sweep runs; responses must
            # stay well-formed at every intermediate state.
            while not job.wait(timeout=0.05):
                polled = _get_json(f"{base}/status")
                assert 0 <= polled["cells_done"] <= polled["cells_total"]
                _get_json(f"{base}/workers")
            assert job.wait(60)
            runs = job.runs()

            status = _get_json(f"{base}/status")
            assert status["jobs_total"] == 1
            assert status["cells_done"] == job.total
            assert status["cells_total"] == job.total
            assert status["cells_pending"] == 0
            assert status["cells_leased"] == 0
            assert status["stats"] == coordinator.stats
            assert status["workers"] == 2
            assert status["uptime_seconds"] > 0

            jobs = _get_json(f"{base}/jobs")["jobs"]
            assert len(jobs) == 1
            assert jobs[0]["done"] == jobs[0]["total"] == job.total
            assert jobs[0]["finished"] is True
            assert jobs[0]["labels"] == [spec.label for spec in specs]

            worker_rows = _get_json(f"{base}/workers")["workers"]
            assert len(worker_rows) == 2
            assert {row["name"] for row in worker_rows} == {"obs-w0", "obs-w1"}
            assert sum(row["completed"] for row in worker_rows) == job.total
            assert all(row["leases"] == 0 for row in worker_rows)

            store_view = _get_json(f"{base}/store")["store"]
            assert store_view["cells"] == job.total
            assert store_view["distinct_specs"] == len(specs)
            assert store_view["distinct_traces"] == len(traces)
            assert store_view["bytes"] > 0

            content_type, body = _get_text(f"{base}/metrics")
            assert content_type.startswith("text/plain; version=0.0.4")
            samples = _parse_prometheus(body)
            assert samples["repro_cells_done"] == str(job.total)
            assert samples["repro_cells_total"] == str(job.total)
            assert samples["repro_store_cells"] == str(job.total)
            assert samples["repro_results_accepted_total"] == str(job.total)
            assert samples["repro_jobs_total"] == "1"

            coordinator.shutdown()
            for thread in threads:
                thread.join(timeout=15)
            assert not any(thread.is_alive() for thread in threads)
            _assert_bit_identical(runs, serial_results, specs)
            # The coordinator's dist timing artifact landed by the store.
            timing_records = [
                json.loads(line)
                for line in (store_dir / "timings.jsonl").read_text().splitlines()
                if json.loads(line)["component"] == "coordinator"
            ]
            assert len(timing_records) == job.total
            for record in timing_records:
                assert record["backend"] == "dist"
                assert "total" in record["phases"]
                assert "simulate" in record["phases"]
            # And the coordinator event log told the story.
            events = [
                json.loads(line)["event"]
                for line in (store_dir / "repro.obs.log").read_text().splitlines()
            ]
            assert "coordinator_started" in events
            assert "job_admitted" in events
            assert "worker_connected" in events
            assert "job_settled" in events
        finally:
            coordinator.shutdown()
            server.close()

    def test_unknown_path_is_json_404(self, specs, traces):
        coordinator = Coordinator()
        coordinator.start()
        server = StatusServer(coordinator, port=0)
        host, port = server.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as failure:
                _get_json(f"http://{host}:{port}/nope")
            assert failure.value.code == 404
            payload = json.loads(failure.value.read().decode("utf-8"))
            assert "/nope" in payload["error"]
        finally:
            server.close()
            coordinator.shutdown()

    def test_closing_server_does_not_disturb_coordinator(
        self, specs, traces, serial_results
    ):
        coordinator = Coordinator()
        address = coordinator.start()
        server = StatusServer(coordinator, port=0)
        server.start()
        job = coordinator.submit(specs, traces)
        server.close()  # observability dies first; the sweep must not care
        workers = [
            Worker(address[0], address[1], name="lone", reconnect=0.75)
        ]
        thread = threading.Thread(target=workers[0].run, daemon=True)
        thread.start()
        assert job.wait(60)
        runs = job.runs()
        coordinator.shutdown()
        thread.join(timeout=15)
        _assert_bit_identical(runs, serial_results, specs)


class TestStatusUnderChaos:
    """Status endpoints polled while a worker process is hard-killed."""

    def test_surface_stays_up_through_worker_kill(
        self, tmp_path, specs, traces, serial_results
    ):
        coordinator = Coordinator()
        host, port = coordinator.start()
        server = StatusServer(coordinator, port=0)
        status_host, status_port = server.start()
        base = f"http://{status_host}:{status_port}"
        job = coordinator.submit(specs, traces)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        doomed_env = dict(env)
        doomed_env["REPRO_CHAOS"] = "worker.simulate.kill:1:1"
        command = [
            sys.executable, "-m", "repro", "worker",
            "--connect", f"{host}:{port}", "--reconnect", "2",
        ]
        doomed = subprocess.Popen(
            command, env=doomed_env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        healthy = None
        try:
            # Poll the surface while the doomed worker dies (exit 137).
            while doomed.poll() is None:
                _get_json(f"{base}/workers")
                _get_json(f"{base}/status")
                time.sleep(0.05)
            assert doomed.returncode == 137
            healthy = subprocess.Popen(
                command, env=env,
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            while not job.wait(timeout=0.1):
                _get_json(f"{base}/workers")  # never 500s mid-recovery
            runs = job.runs()
        finally:
            if doomed.poll() is None:
                doomed.kill()
                doomed.wait(timeout=15)
            if healthy is not None:
                healthy.terminate()
                healthy.wait(timeout=15)
            coordinator.shutdown()
        _assert_bit_identical(runs, serial_results, specs)
        # The endpoint's degradation counters agree with the coordinator.
        status = _get_json(f"{base}/status")
        assert status["stats"] == coordinator.stats
        assert status["stats"]["requeued"] >= 1
        _, body = _get_text(f"{base}/metrics")
        samples = _parse_prometheus(body)
        assert samples["repro_cells_requeued_total"] == str(
            coordinator.stats["requeued"]
        )
        server.close()


class TestProgressWindow:
    """The printed rate and ETA track the recent window, not the mean."""

    def _run_clock(self, monkeypatch):
        clock = {"now": 1000.0}
        monkeypatch.setattr(time, "monotonic", lambda: clock["now"])
        return clock

    def test_store_warm_burst_does_not_poison_eta(self, monkeypatch):
        clock = self._run_clock(monkeypatch)
        out = io.StringIO()
        printer = ProgressPrinter(
            "resume", stream=out, min_interval=0.0, window=30.0
        )
        # 50 store-warm cells land in 0.1s (a resumed run's replay)...
        for done in range(1, 51):
            printer(done, 100)
            clock["now"] += 0.002
        # ...then real simulation at 1 cell per 10s.
        for done in range(51, 56):
            clock["now"] += 10.0
            printer(done, 100)
        last = out.getvalue().strip().splitlines()[-1]
        # Since-start mean would claim ~1.05 cells/s and promise an ETA
        # under a minute; the windowed rate reports reality: ~0.1 cells/s
        # and ~45 remaining cells => ETA in minutes.
        assert "0.1 cells/s" in last
        assert "ETA 7.5m" in last

    def test_final_line_reports_whole_run(self, monkeypatch):
        clock = self._run_clock(monkeypatch)
        out = io.StringIO()
        printer = ProgressPrinter("run", stream=out, min_interval=0.0)
        printer(1, 2)
        clock["now"] += 50.0
        printer(2, 2)
        last = out.getvalue().strip().splitlines()[-1]
        assert "took 50.0s" in last

    def test_stall_longer_than_window_degrades_rate(self, monkeypatch):
        clock = self._run_clock(monkeypatch)
        out = io.StringIO()
        printer = ProgressPrinter(
            "stall", stream=out, min_interval=0.0, window=5.0
        )
        printer(10, 20)
        clock["now"] += 1.0
        printer(12, 20)
        clock["now"] += 100.0  # stall: no completions for 101s
        printer(12, 20, stats={"requeued": 1})  # stats change forces a line
        last = out.getvalue().strip().splitlines()[-1]
        assert "0.0 cells/s" in last


class TestStoreSummary:
    def test_summary_counts_cells_bytes_specs_traces(
        self, tmp_path, specs, traces
    ):
        store_dir = tmp_path / "store"
        Experiment(specs, traces=traces, profile="small", store=store_dir).run()
        summary = ResultStore(store_dir).summary()
        assert summary["cells"] == len(specs) * len(traces)
        assert summary["distinct_specs"] == len(specs)
        assert summary["distinct_traces"] == len(traces)
        assert summary["bytes"] > 0
        assert summary["root"] == str(Path(store_dir))

    def test_empty_store_summary(self, tmp_path):
        summary = ResultStore(tmp_path / "empty").summary()
        assert summary["cells"] == 0
        assert summary["bytes"] == 0
        assert summary["distinct_specs"] == 0
        assert summary["distinct_traces"] == 0

    def test_cli_store_ls_summary(self, tmp_path, specs, traces, capsys):
        store_dir = tmp_path / "store"
        Experiment(specs, traces=traces, profile="small", store=store_dir).run()
        assert main(["store", "ls", "--summary", "--store", str(store_dir)]) == 0
        line = capsys.readouterr().out.strip()
        total = len(specs) * len(traces)
        assert line.startswith(f"{total} cell(s)")
        assert f"{len(specs)} distinct spec(s)" in line
        assert f"{len(traces)} distinct trace(s)" in line
        assert main([
            "store", "ls", "--summary", "--store", str(store_dir), "--json"
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cells"] == total


class TestTop:
    def test_sparkline_scales_to_peak(self):
        assert sparkline([]) == ""
        assert sparkline([0.0, 0.0]) == "▁▁"
        line = sparkline([1.0, 2.0, 4.0])
        assert len(line) == 3
        assert line[-1] == "█"

    def test_render_frame(self):
        status = {
            "uptime_seconds": 12.0,
            "jobs_total": 2,
            "jobs_active": 1,
            "cells_done": 3,
            "cells_total": 8,
            "cells_per_second": 1.5,
            "eta_seconds": 3.33,
            "workers": 2,
            "stats": {"requeued": 1, "retried": 0, "quarantined": 0},
        }
        jobs = [
            {"job": 1, "done": 4, "total": 4, "finished": True, "error": None,
             "labels": ["a"]},
            {"job": 2, "done": 0, "total": 4, "finished": False, "error": None,
             "labels": ["b", "c"]},
        ]
        workers = [
            {"name": "w0", "leases": 2, "completed": 1, "last_seen_seconds": 0.2},
        ]
        frame = render(status, jobs, workers, [0.5, 1.0, 1.5])
        assert "cells 3/8 (38%)" in frame
        assert "1.50 cells/s" in frame
        assert "ETA 3.3s" in frame
        assert "degradation: requeued 1" in frame
        assert "finished" in frame and "running" in frame
        assert "w0" in frame
        assert "throughput" in frame

    def test_run_top_against_live_server_and_cli(self, capsys):
        coordinator = Coordinator()
        coordinator.start()
        server = StatusServer(coordinator, port=0)
        host, port = server.start()
        try:
            out = io.StringIO()
            code = run_top(
                f"{host}:{port}", interval=0.0, iterations=2, clear=False,
                stream=out,
            )
            assert code == 0
            assert out.getvalue().count("repro top · up") == 2
            assert "\x1b" not in out.getvalue()  # --no-clear means no ANSI
            assert main([
                "top", "--connect", f"{host}:{port}",
                "--iterations", "1", "--no-clear",
            ]) == 0
            assert "repro top · up" in capsys.readouterr().out
        finally:
            server.close()
            coordinator.shutdown()

    def test_run_top_unreachable_returns_4(self):
        out = io.StringIO()
        code = run_top(
            "127.0.0.1:9", interval=0.0, iterations=1, clear=False, stream=out
        )
        assert code == 4
        assert "unreachable" in out.getvalue()


class TestServeStatusPortCli:
    """`repro serve --status-port` wires the surface into the CLI path."""

    def test_serve_sweep_with_status_port(self, tmp_path, capsys):
        # A worker thread joins the CLI-spawned coordinator by port; the
        # status server must be live during the run and gone after it.
        store_dir = tmp_path / "store"
        work_port, status_port = 47951, 47952
        probe = {}

        def poll_then_work():
            # Wait for the status surface to come up, snapshot it, then
            # run a worker so the CLI sweep can finish.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                try:
                    probe["status"] = _get_json(
                        f"http://127.0.0.1:{status_port}/status"
                    )
                    break
                except (urllib.error.URLError, OSError):
                    time.sleep(0.05)
            worker = Worker(
                "127.0.0.1", work_port, connect_retry=30, reconnect=0.75
            )
            worker.run()

        thread = threading.Thread(target=poll_then_work, daemon=True)
        thread.start()
        code = main([
            "serve", "--port", str(work_port),
            "--status-port", str(status_port),
            "--store", str(store_dir),
            "--base", "tage-gsc", "--profile", "small",
            "--suite", "cbp4like", "--benchmarks", ",".join(BENCHMARKS),
            "--length", str(LENGTH),
        ])
        thread.join(timeout=30)
        assert not thread.is_alive(), "worker thread hung"
        assert code == 0
        captured = capsys.readouterr()
        assert f"http://127.0.0.1:{status_port}/status" in captured.err
        assert probe["status"]["cells_total"] >= 0
        # The surface died with the run.
        with pytest.raises((urllib.error.URLError, OSError)):
            _get_json(f"http://127.0.0.1:{status_port}/status")
        assert (store_dir / "timings.jsonl").exists()

    def test_status_port_bind_failure_exit_code(self, tmp_path):
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        blocked_port = blocker.getsockname()[1]
        try:
            code = main([
                "serve", "--port", "0",
                "--status-port", str(blocked_port),
                "--base", "tage-gsc", "--profile", "small",
                "--suite", "cbp4like", "--benchmarks", BENCHMARKS[0],
                "--length", str(LENGTH),
            ])
        finally:
            blocker.close()
        assert code == 3  # EXIT_BIND_FAILURE, same as a coordinator clash
