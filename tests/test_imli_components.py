"""Tests for the IMLI-SIC and IMLI-OH predictor components."""

from __future__ import annotations

import pytest

from repro.core.component import SharedState
from repro.core.imli_oh import IMLIOuterHistoryComponent
from repro.core.imli_sic import IMLISameIterationComponent
from repro.trace.branch import BranchRecord


def _body_branch(pc: int, taken: bool) -> BranchRecord:
    return BranchRecord(pc=pc, target=pc + 32, taken=taken)


def _loop_back(pc: int, taken: bool) -> BranchRecord:
    return BranchRecord(pc=pc, target=pc - 64, taken=taken)


def _run_nested_loop(components, state, pattern_for, outer_iterations, trip, target_pc=0x1000):
    """Drive components through a synthetic two-level loop nest.

    ``pattern_for(outer, inner)`` gives the outcome of the target branch.
    Returns the list of (prediction_correct, outer, inner) observations for
    the second half of the run (after warm-up).
    """
    observations = []
    back_pc = 0x2000
    for outer in range(outer_iterations):
        for inner in range(trip):
            outcome = pattern_for(outer, inner)
            record = _body_branch(target_pc, outcome)
            # Prediction step: sum the component counters.
            total = 0
            selections = []
            for component in components:
                component_selection = component.select(target_pc, state)
                selections.append(component_selection)
                for table, index in component_selection:
                    total += 2 * table.values[index] + 1
            prediction = total >= 0
            if outer >= outer_iterations // 2:
                observations.append((prediction == outcome, outer, inner))
            # Update step.
            for component, component_selection in zip(components, selections):
                component.train(target_pc, outcome, component_selection, state)
                component.on_outcome(record, state)
            state.update_conditional(record)
            # Inner loop back-edge.
            back = _loop_back(back_pc, inner < trip - 1)
            for component in components:
                component.on_outcome(back, state)
            state.update_conditional(back)
    return observations


class TestIMLISameIterationComponent:
    def test_select_returns_single_counter(self):
        component = IMLISameIterationComponent(entries=128)
        state = SharedState()
        selections = component.select(0x1234, state)
        assert len(selections) == 1
        table, index = selections[0]
        assert 0 <= index < 128

    def test_index_depends_on_imli_count(self):
        component = IMLISameIterationComponent(entries=512)
        state = SharedState()
        index_at_zero = component.select(0x1234, state)[0][1]
        state.imli.count = 7
        index_at_seven = component.select(0x1234, state)[0][1]
        assert index_at_zero != index_at_seven

    def test_storage_bits(self):
        assert IMLISameIterationComponent(entries=512, counter_bits=6).storage_bits() == 3072

    def test_no_speculative_state(self):
        assert IMLISameIterationComponent().speculative_state_bits() == 0

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            IMLISameIterationComponent(entries=500)

    def test_learns_same_iteration_correlation(self):
        """Out[N][M] == pattern[M] must become highly predictable."""
        pattern = [bool((inner * 7) % 3 == 0) for inner in range(16)]
        component = IMLISameIterationComponent(entries=256)
        state = SharedState()
        observations = _run_nested_loop(
            [component], state, lambda outer, inner: pattern[inner],
            outer_iterations=12, trip=16,
        )
        accuracy = sum(correct for correct, _, _ in observations) / len(observations)
        assert accuracy > 0.95

    def test_does_not_learn_alternating_outer_correlation(self):
        """Out[N][M] == parity(N) flips every outer iteration -> SIC cannot lock on."""
        component = IMLISameIterationComponent(entries=256)
        state = SharedState()
        observations = _run_nested_loop(
            [component], state, lambda outer, inner: bool(outer % 2),
            outer_iterations=12, trip=16,
        )
        accuracy = sum(correct for correct, _, _ in observations) / len(observations)
        assert accuracy < 0.8


class TestIMLIOuterHistoryComponent:
    def test_select_returns_single_counter(self):
        component = IMLIOuterHistoryComponent(prediction_entries=64)
        state = SharedState()
        selections = component.select(0x1234, state)
        assert len(selections) == 1
        assert 0 <= selections[0][1] < 64

    def test_storage_accounting(self):
        component = IMLIOuterHistoryComponent(
            prediction_entries=256, counter_bits=6, tracked_branches=16, iterations_per_branch=64
        )
        # prediction table + 1 Kbit history + 16-bit PIPE
        assert component.storage_bits() == 256 * 6 + 1024 + 16
        assert component.speculative_state_bits() == 16

    def test_history_and_pipe_updates(self):
        component = IMLIOuterHistoryComponent()
        state = SharedState()
        record = _body_branch(0x1000, True)
        slot = component._slot(0x1000)
        cell = component._cell(slot, state.imli.count)
        component.on_outcome(record, state)
        assert component.history[cell] == 1
        assert component.pipe[slot] == 0  # the old history value was staged
        component.on_outcome(_body_branch(0x1000, False), state)
        assert component.history[cell] == 0
        assert component.pipe[slot] == 1

    def test_backward_branches_are_not_recorded(self):
        component = IMLIOuterHistoryComponent()
        state = SharedState()
        component.on_outcome(_loop_back(0x2000, True), state)
        assert all(bit == 0 for bit in component.history)

    def test_recovers_previous_outer_iteration_outcomes(self):
        """After a full outer iteration, recovered bits are Out[N-1][M] and Out[N-1][M-1]."""
        component = IMLIOuterHistoryComponent()
        state = SharedState()
        trip = 8
        rows = [
            [bool((outer + inner) % 3 == 0) for inner in range(trip)]
            for outer in range(4)
        ]
        target_pc = 0x1000
        back_pc = 0x2000
        recovered = []
        for outer in range(4):
            for inner in range(trip):
                # The IMLI counter value seen by the body branch differs by one
                # between the very first outer iteration and the later ones
                # (Section 4.1 of the paper), so only check once the mapping
                # has stabilised (outer >= 2).
                if outer >= 2:
                    same, previous = component.recovered_outcomes(target_pc, state.imli.count)
                    recovered.append((outer, inner, same, previous))
                component.on_outcome(_body_branch(target_pc, rows[outer][inner]), state)
                state.update_conditional(_body_branch(target_pc, rows[outer][inner]))
                back = _loop_back(back_pc, inner < trip - 1)
                component.on_outcome(back, state)
                state.update_conditional(back)
            # The outer loop back edge.
            outer_back = _loop_back(0x3000, outer < 3)
            component.on_outcome(outer_back, state)
            state.update_conditional(outer_back)
        for outer, inner, same, previous in recovered:
            assert bool(same) == rows[outer - 1][inner]
            if inner > 0:
                assert bool(previous) == rows[outer - 1][inner - 1]

    def test_learns_wormhole_correlation(self):
        """Out[N][M] == Out[N-1][M-1] must become highly predictable."""
        import random

        rng = random.Random(3)
        trip = 12
        rows = [[rng.random() < 0.5 for _ in range(trip)]]
        for outer in range(1, 16):
            previous = rows[outer - 1]
            rows.append([rng.random() < 0.5] + [previous[m - 1] for m in range(1, trip)])
        component = IMLIOuterHistoryComponent(prediction_entries=128)
        state = SharedState()
        observations = _run_nested_loop(
            [component], state, lambda outer, inner: rows[outer][inner],
            outer_iterations=16, trip=trip,
        )
        # Ignore inner == 0 (a genuinely random bit each outer iteration).
        informative = [correct for correct, _, inner in observations if inner > 0]
        accuracy = sum(informative) / len(informative)
        assert accuracy > 0.9

    def test_delayed_update_drains_eventually(self):
        component = IMLIOuterHistoryComponent(update_delay=3)
        state = SharedState()
        slot = component._slot(0x1000)
        cell = component._cell(slot, 0)
        component.on_outcome(_body_branch(0x1000, True), state)
        assert component.history[cell] == 0  # not yet visible
        # Backward branches advance the delay clock without writing history.
        for _ in range(4):
            component.on_outcome(_loop_back(0x2000, True), state)
        assert component.history[cell] == 1  # drained after the delay

    def test_pipe_snapshot_restore(self):
        component = IMLIOuterHistoryComponent()
        state = SharedState()
        component.on_outcome(_body_branch(0x1000, True), state)
        snapshot = component.snapshot_pipe()
        component.on_outcome(_body_branch(0x1000, False), state)
        component.restore_pipe(snapshot)
        assert component.snapshot_pipe() == snapshot

    def test_pipe_restore_validates_length(self):
        component = IMLIOuterHistoryComponent()
        with pytest.raises(ValueError):
            component.restore_pipe((0, 1))

    def test_invalid_delay_rejected(self):
        with pytest.raises(ValueError):
            IMLIOuterHistoryComponent(update_delay=-1)
