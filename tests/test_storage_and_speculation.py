"""Tests for storage accounting, delayed update and checkpoint modelling."""

from __future__ import annotations

import pytest

from repro.predictors.composites import build_named
from repro.sim.checkpointing import (
    run_checkpoint_recovery,
    speculative_management_cost,
    total_checkpoint_storage_bits,
)
from repro.sim.delayed_update import run_delayed_update_experiment, summarize
from repro.sim.storage import (
    imli_component_cost_bits,
    speculative_state_report,
    storage_report,
)


class TestStorageReport:
    def test_breakdown_sums_to_components(self):
        report = storage_report("tage-gsc+imli", profile="small")
        assert report.total_bits > 0
        assert report.total_kilobits == pytest.approx(report.total_bits / 1024.0)
        assert report.total_bytes == pytest.approx(report.total_bits / 8.0)
        names = [name for name, _ in report.breakdown]
        assert "tage" in names
        assert any(name.startswith("sc/") for name in names)

    def test_imli_components_appear_in_breakdown(self):
        report = storage_report("tage-gsc+imli", profile="small")
        names = [name for name, _ in report.breakdown]
        assert "sc/imli-sic" in names
        assert "sc/imli-oh" in names

    def test_gehl_breakdown(self):
        report = storage_report("gehl+imli", profile="small")
        names = [name for name, _ in report.breakdown]
        assert any(name.startswith("gehl/") for name in names)

    def test_side_predictors_in_breakdown(self):
        report = storage_report("tage-gsc+wh", profile="small")
        names = [name for name, _ in report.breakdown]
        assert "wormhole" in names
        assert "loop-predictor" in names

    def test_accepts_prebuilt_predictor(self):
        predictor = build_named("gehl", profile="small")
        report = storage_report("gehl", profile="small", predictor=predictor)
        assert report.total_bits == predictor.storage_bits()


class TestIMLIComponentCost:
    def test_cost_is_small_relative_to_predictor(self):
        cost = imli_component_cost_bits(profile="small")
        base = storage_report("tage-gsc", profile="small").total_bits
        assert cost["total"] > 0
        assert cost["total"] < base * 0.25

    def test_cost_contains_both_components(self):
        cost = imli_component_cost_bits(profile="small")
        assert "sc/imli-sic" in cost
        assert "sc/imli-oh" in cost


class TestSpeculativeStateReport:
    def test_report_shape(self):
        report = speculative_state_report(profile="small")
        assert set(report) == {"tage-gsc", "tage-gsc+imli", "tage-gsc+l", "tage-gsc+wh"}
        for details in report.values():
            assert "checkpoint_bits" in details
            assert "requires_inflight_window_search" in details

    def test_imli_does_not_need_window_search(self):
        report = speculative_state_report(profile="small")
        assert report["tage-gsc+imli"]["requires_inflight_window_search"] is False
        assert report["tage-gsc+l"]["requires_inflight_window_search"] is True
        assert report["tage-gsc+wh"]["requires_inflight_window_search"] is True

    def test_imli_checkpoint_is_a_few_tens_of_bits_larger(self):
        report = speculative_state_report(profile="small")
        base_bits = report["tage-gsc"]["checkpoint_bits"]
        imli_bits = report["tage-gsc+imli"]["checkpoint_bits"]
        assert 0 < imli_bits - base_bits <= 32


class TestDelayedUpdateExperiment:
    def test_delay_costs_very_little(self, sic_trace, wormhole_trace):
        results = run_delayed_update_experiment(
            [sic_trace, wormhole_trace], base="tage-gsc", delays=(16,), profile="small"
        )
        assert len(results) == 1
        result = results[0]
        assert result.delay == 16
        # The paper reports ~0.002 MPKI loss; allow a loose bound here since
        # the traces are tiny, but the loss must stay far below the IMLI gain.
        assert abs(result.mpki_loss) < 1.0
        assert summarize(results) == {16: pytest.approx(result.mpki_loss)}

    def test_invalid_delay_rejected(self, sic_trace):
        with pytest.raises(ValueError):
            run_delayed_update_experiment([sic_trace], delays=(0,), profile="small")


class TestCheckpointRecovery:
    def test_recovery_reproduces_committed_imli_state(self, sic_trace):
        predictor = build_named("tage-gsc", profile="small")
        report = run_checkpoint_recovery(predictor, sic_trace)
        assert report.conditional_branches == sic_trace.conditional_count
        assert report.recoveries == report.mispredictions
        assert report.divergence_events == 0
        assert report.recovered_correctly
        assert report.checkpoint_bits_per_branch == 10

    def test_checkpoint_cost_table(self):
        costs = speculative_management_cost(inflight_window=64)
        assert costs["imli"]["checkpoint_bits"] == 26
        assert costs["global-history"]["associative_search"] is False
        assert costs["local-history"]["associative_search"] is True
        assert costs["local-history"]["comparisons_per_fetch"] == 64
        assert costs["wormhole"]["comparisons_per_fetch"] == 64

    def test_total_checkpoint_storage(self):
        costs = speculative_management_cost(inflight_window=32)
        total = total_checkpoint_storage_bits(costs, ["global-history", "imli"], inflight_window=32)
        assert total == 32 * (costs["global-history"]["checkpoint_bits"] + 26)

    def test_unknown_kind_rejected(self):
        costs = speculative_management_cost()
        with pytest.raises(KeyError):
            total_checkpoint_storage_bits(costs, ["quantum-history"])

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            speculative_management_cost(inflight_window=0)
