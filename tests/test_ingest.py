"""External trace ingestion: readers, gatekeeper policies, the pipeline
and the ``repro ingest`` CLI verb (see ``docs/TRACES.md``).
"""

from __future__ import annotations

import gzip
import json
import struct

import pytest

from repro.cli import main
from repro.ingest import (
    CBPTextReader,
    Gatekeeper,
    IngestError,
    RAW_MAGIC,
    RawBinaryReader,
    RawEvent,
    ingest_trace,
    resolve_reader,
)
from repro.trace.chunked import load_any_trace, load_chunked_trace
from repro.trace.trace import load_trace

_RAW_EVENT = struct.Struct("<QQBBI")


def _write_cbp(path, lines):
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def _write_raw(path, events, magic=True):
    blob = RAW_MAGIC if magic else b""
    for pc, target, taken, kind, gap in events:
        blob += _RAW_EVENT.pack(pc, target, taken, kind, gap)
    path.write_bytes(blob)
    return path


GOOD_LINES = [
    "# a comment",
    "0x1000 1 0x2000",
    "0x1004 0 0x1008",
    "4104 t 4200 cond 8",
    "0x100c 1 0x1000 call",
    "// another comment style",
    "0x1010 n",
]


class TestReaders:
    def test_cbp_text_parses_fields(self, tmp_path):
        path = _write_cbp(tmp_path / "t.txt", GOOD_LINES)
        records = list(Gatekeeper("reject").validate(CBPTextReader().events(path)))
        assert len(records) == 5
        assert records[0].pc == 0x1000 and records[0].taken
        assert records[2].instruction_gap == 8
        assert records[3].kind.name == "CALL"
        # no target given: repaired to the fall-through convention
        assert records[4].target == 0x1010 + 1

    def test_cbp_gzip_transparent(self, tmp_path):
        text = "\n".join(GOOD_LINES) + "\n"
        path = tmp_path / "t.txt.gz"
        path.write_bytes(gzip.compress(text.encode()))
        records = list(Gatekeeper("reject").validate(CBPTextReader().events(path)))
        assert len(records) == 5

    def test_raw_binary_round_trip(self, tmp_path):
        events = [(0x1000 + 4 * i, 0x2000, i % 2, 0, 4) for i in range(100)]
        path = _write_raw(tmp_path / "t.raw", events)
        records = list(Gatekeeper("reject").validate(RawBinaryReader().events(path)))
        assert len(records) == 100
        assert records[3].pc == 0x100C and records[3].taken

    def test_raw_binary_magic_optional(self, tmp_path):
        events = [(0x1000, 0x2000, 1, 0, 4)]
        bare = _write_raw(tmp_path / "bare.raw", events, magic=False)
        records = list(Gatekeeper("reject").validate(RawBinaryReader().events(bare)))
        assert len(records) == 1

    def test_raw_trailing_partial_record_rejected(self, tmp_path):
        path = _write_raw(tmp_path / "t.raw", [(0x1000, 0x2000, 1, 0, 4)])
        path.write_bytes(path.read_bytes() + b"\x01\x02\x03")
        with pytest.raises(IngestError, match="malformed"):
            list(Gatekeeper("reject").validate(RawBinaryReader().events(path)))

    def test_sniffing_resolves_both_formats(self, tmp_path):
        text = _write_cbp(tmp_path / "t.txt", GOOD_LINES)
        raw = _write_raw(tmp_path / "t.raw", [(0x1000, 0x2000, 1, 0, 4)])
        assert resolve_reader("auto", text).name == "cbp"
        assert resolve_reader("auto", raw).name == "raw"
        with pytest.raises(ValueError, match="unknown trace reader"):
            resolve_reader("no-such-reader", text)


class TestGatekeeper:
    def test_reject_attributes_source_line(self, tmp_path):
        path = _write_cbp(tmp_path / "bad.txt", ["0x1000 1", "not-a-line"])
        with pytest.raises(IngestError) as excinfo:
            list(Gatekeeper("reject").validate(CBPTextReader().events(path)))
        message = str(excinfo.value)
        assert "line 2" in message and "not-a-line" in message

    def test_skip_counts_and_keeps_attributions(self, tmp_path):
        lines = ["0x1000 1"] + [f"junk-{i}" for i in range(8)] + ["0x1004 0"]
        path = _write_cbp(tmp_path / "bad.txt", lines)
        keeper = Gatekeeper("skip")
        records = list(keeper.validate(CBPTextReader().events(path)))
        assert len(records) == 2
        assert keeper.skipped == 8
        assert len(keeper.attributions) == 5  # first five, not all

    def test_repair_fixes_fixable_fields(self):
        keeper = Gatekeeper("repair")
        events = [
            RawEvent(pc=0x1000, taken=False, kind_code=2, source="e 1"),  # call
            RawEvent(pc=0x1004, taken=True, target=2**70, source="e 2"),
            RawEvent(pc=0x1008, taken=True, gap=-5, source="e 3"),
        ]
        records = list(keeper.validate(events))
        assert keeper.repaired == 3
        assert records[0].taken  # non-conditional branches are always taken
        assert records[1].target == 0x1004 + 1
        assert records[2].instruction_gap == 0

    def test_reject_raises_on_repairable_too(self):
        events = [RawEvent(pc=0x1000, taken=False, kind_code=2, source="e 1")]
        with pytest.raises(IngestError):
            list(Gatekeeper("reject").validate(events))

    def test_source_order_must_be_monotonic(self):
        events = [
            RawEvent(pc=0x1000, taken=True, source="line 5"),
            RawEvent(pc=0x1004, taken=True, source="line 3"),
        ]
        for policy in ("reject", "repair", "skip"):
            with pytest.raises(IngestError, match="out of source order"):
                list(Gatekeeper(policy).validate(events))


class TestPipeline:
    def test_chunked_layout(self, tmp_path):
        path = _write_cbp(
            tmp_path / "in.txt",
            [f"{0x1000 + 4 * i:#x} {i % 2}" for i in range(500)],
        )
        report = ingest_trace(
            path, tmp_path / "out", layout="chunked", chunk_branches=128
        )
        assert report.records == 500
        assert report.chunks == 4
        loaded = load_chunked_trace(tmp_path / "out")
        assert loaded.fingerprint() == report.fingerprint
        assert loaded.metadata["ingested-from"] == path.name
        assert report.branches_per_second > 0

    def test_binary_layout(self, tmp_path):
        path = _write_cbp(tmp_path / "in.txt", ["0x1000 1 0x2000", "0x1004 0"])
        report = ingest_trace(path, tmp_path / "out.rpt", layout="binary")
        assert report.chunks == 0
        loaded = load_trace(tmp_path / "out.rpt")
        assert len(loaded) == 2
        assert loaded.fingerprint() == report.fingerprint

    def test_default_name_strips_suffixes(self, tmp_path):
        text = "0x1000 1\n"
        path = tmp_path / "work.load.txt.gz"
        path.write_bytes(gzip.compress(text.encode()))
        report = ingest_trace(path, tmp_path / "out")
        assert report.name == "work.load"

    def test_reject_policy_propagates(self, tmp_path):
        path = _write_cbp(tmp_path / "in.txt", ["0x1000 1", "garbage"])
        with pytest.raises(IngestError):
            ingest_trace(path, tmp_path / "out")
        report = ingest_trace(path, tmp_path / "out2", on_error="skip")
        assert report.records == 1 and report.skipped == 1


class TestIngestCLI:
    def test_convert_inspect_validate(self, tmp_path, capsys):
        path = _write_cbp(
            tmp_path / "in.txt",
            [f"{0x1000 + 4 * i:#x} {int(i % 3 != 0)}" for i in range(300)],
        )
        out = tmp_path / "chunked"
        assert main([
            "ingest", "convert", str(path), "-o", str(out),
            "--chunk-branches", "100", "--name", "cli-trace", "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["name"] == "cli-trace"
        assert report["chunks"] == 3
        assert main(["ingest", "inspect", str(out), "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["layout"] == "chunked"
        assert info["fingerprint"] == report["fingerprint"]
        assert main(["ingest", "validate", str(out)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_convert_rejects_bad_input(self, tmp_path, capsys):
        path = _write_cbp(tmp_path / "in.txt", ["0x1000 1", "broken line !!!"])
        assert main(
            ["ingest", "convert", str(path), "-o", str(tmp_path / "out")]
        ) == 1
        err = capsys.readouterr().err
        assert "line 2" in err

    def test_simulate_over_ingested_trace(self, tmp_path, capsys):
        path = _write_cbp(
            tmp_path / "in.txt",
            [f"{0x1000 + 4 * (i % 40):#x} {int(i % 40 < 30)}" for i in range(400)],
        )
        out = tmp_path / "chunked"
        assert main(
            ["ingest", "convert", str(path), "-o", str(out), "--name", "mini"]
        ) == 0
        capsys.readouterr()
        assert main([
            "simulate", "--trace", str(out),
            "--configurations", "tage-gsc", "--profile", "small",
        ]) == 0
        table = capsys.readouterr().out
        assert "mini" in table
        # and the loaded object is the chunked trace, not a decoded copy
        assert load_any_trace(out).chunk_count >= 1
