"""Tests for the GEHL predictor, the statistical corrector and TAGE-GSC."""

from __future__ import annotations

import random

import pytest

from repro.common.history import LocalHistoryTable
from repro.core.imli_sic import IMLISameIterationComponent
from repro.predictors.components import LocalHistoryComponent
from repro.predictors.gehl import GEHLConfig, GEHLPredictor
from repro.predictors.simple import AlwaysTakenPredictor, BimodalPredictor
from repro.predictors.statistical_corrector import (
    StatisticalCorrector,
    StatisticalCorrectorConfig,
)
from repro.predictors.tage import TAGEConfig
from repro.predictors.tage_gsc import TAGEGSCConfig, TAGEGSCPredictor
from repro.sim.engine import simulate
from repro.trace.branch import conditional_branch

SMALL_GEHL = GEHLConfig(num_tables=4, table_entries=256, bias_entries=256, max_history=48)
SMALL_TAGE = TAGEConfig(num_tables=5, table_entries=256, base_entries=512, max_history=60)
SMALL_SC = StatisticalCorrectorConfig(
    bias_entries=128, global_table_entries=128, global_history_lengths=(4, 9, 18)
)
SMALL_TAGE_GSC = TAGEGSCConfig(tage=SMALL_TAGE, corrector=SMALL_SC)


def _drive(predictor, records):
    mispredictions = 0
    for record in records:
        prediction = predictor.predict(record)
        predictor.update(record, prediction)
        mispredictions += prediction != record.taken
    return mispredictions


class TestGEHLConfig:
    def test_history_lengths(self):
        lengths = SMALL_GEHL.history_lengths()
        assert len(lengths) == SMALL_GEHL.num_tables
        assert lengths[0] == SMALL_GEHL.min_history


class TestGEHLPredictor:
    def test_learns_biased_branch(self):
        predictor = GEHLPredictor(SMALL_GEHL)
        records = [conditional_branch(0x40, 0x80, taken=True)] * 150
        assert _drive(predictor, records) <= 6

    def test_learns_alternation(self, alternating_records):
        predictor = GEHLPredictor(SMALL_GEHL)
        assert _drive(predictor, alternating_records * 4) <= len(alternating_records)

    def test_learns_history_correlation(self):
        rng = random.Random(5)
        predictor = GEHLPredictor(SMALL_GEHL)
        records = []
        for _ in range(1200):
            a = rng.random() < 0.5
            records.append(conditional_branch(0x100, 0x140, taken=a))
            records.append(conditional_branch(0x300, 0x340, taken=not a))
        assert _drive(predictor, records) / len(records) < 0.40

    def test_beats_always_taken_on_easy_trace(self, easy_trace):
        gehl = simulate(GEHLPredictor(SMALL_GEHL), easy_trace)
        always = simulate(AlwaysTakenPredictor(), easy_trace)
        assert gehl.mpki < always.mpki

    def test_extra_component_improves_sic_kernel(self, sic_trace):
        base = simulate(GEHLPredictor(SMALL_GEHL, name="gehl"), sic_trace)
        with_sic = simulate(
            GEHLPredictor(
                SMALL_GEHL,
                extra_components=[IMLISameIterationComponent(entries=512)],
                name="gehl+sic",
            ),
            sic_trace,
        )
        assert with_sic.mpki < base.mpki

    def test_local_component_requires_table_and_works(self, local_trace):
        table = LocalHistoryTable(128, 12)
        predictor = GEHLPredictor(
            SMALL_GEHL,
            extra_components=[LocalHistoryComponent(history_lengths=[6, 11], entries=256)],
            local_history_table=table,
            name="gehl+l",
        )
        result = simulate(predictor, local_trace)
        base = simulate(GEHLPredictor(SMALL_GEHL), local_trace)
        assert result.mpki <= base.mpki

    def test_storage_includes_components_and_state(self):
        predictor = GEHLPredictor(SMALL_GEHL)
        assert predictor.storage_bits() > SMALL_GEHL.num_tables * SMALL_GEHL.table_entries * 6

    def test_speculative_state_is_small(self):
        predictor = GEHLPredictor(SMALL_GEHL)
        assert predictor.speculative_state_bits() < 128


class TestStatisticalCorrectorConfig:
    def test_rejects_empty_history_lengths(self):
        with pytest.raises(ValueError):
            StatisticalCorrectorConfig(global_history_lengths=())

    def test_rejects_negative_revert_margin(self):
        with pytest.raises(ValueError):
            StatisticalCorrectorConfig(revert_margin=-1)


class TestStatisticalCorrector:
    def _make(self):
        from repro.core.component import SharedState

        state = SharedState()
        return StatisticalCorrector(state, SMALL_SC), state

    def test_agrees_with_tage_when_cold(self):
        corrector, state = self._make()
        state.tage_prediction = True
        context = corrector.predict(0x1234, tage_prediction=True)
        assert context.final_prediction is True
        assert not context.reverted

    def test_reverts_when_confidently_disagreeing(self):
        corrector, state = self._make()
        record = conditional_branch(0x1234, 0x1300, taken=False)
        # Train the corrector that this branch is not taken while TAGE keeps
        # predicting taken.
        for _ in range(40):
            state.tage_prediction = True
            context = corrector.predict(0x1234, tage_prediction=True)
            corrector.train(record, context)
            state.update_conditional(record)
        state.tage_prediction = True
        context = corrector.predict(0x1234, tage_prediction=True)
        assert context.reverted
        assert context.final_prediction is False

    def test_storage_breakdown_names(self):
        corrector, _ = self._make()
        names = [name for name, _ in corrector.component_storage_breakdown()]
        assert names[0] == "bias"
        assert "global" in names


class TestTAGEGSCPredictor:
    def test_learns_easy_and_history_correlated_branches(self, easy_trace):
        predictor = TAGEGSCPredictor(SMALL_TAGE_GSC)
        result = simulate(predictor, easy_trace)
        always = simulate(AlwaysTakenPredictor(), easy_trace)
        assert result.mpki < always.mpki

    def test_not_much_worse_than_bimodal_anywhere(self, easy_trace):
        tage_gsc = simulate(TAGEGSCPredictor(SMALL_TAGE_GSC), easy_trace)
        bimodal = simulate(BimodalPredictor(entries=4096), easy_trace)
        assert tage_gsc.mpki <= bimodal.mpki * 1.5 + 1.0

    def test_update_requires_predict(self):
        predictor = TAGEGSCPredictor(SMALL_TAGE_GSC)
        with pytest.raises(RuntimeError):
            predictor.update(conditional_branch(0x40, 0x80, True), True)

    def test_imli_component_improves_sic_kernel(self, sic_trace):
        base = simulate(TAGEGSCPredictor(SMALL_TAGE_GSC), sic_trace)
        with_sic = simulate(
            TAGEGSCPredictor(
                SMALL_TAGE_GSC,
                extra_sc_components=[IMLISameIterationComponent(entries=512)],
                name="tage-gsc+sic",
            ),
            sic_trace,
        )
        assert with_sic.mpki < base.mpki

    def test_storage_is_sum_of_parts(self):
        predictor = TAGEGSCPredictor(SMALL_TAGE_GSC)
        assert predictor.storage_bits() == (
            predictor.tage.storage_bits()
            + predictor.corrector.storage_bits()
            + predictor.state.storage_bits()
        )

    def test_speculative_state_is_small(self):
        predictor = TAGEGSCPredictor(SMALL_TAGE_GSC)
        # A handful of pointer/counter bits, not the predictor tables.
        assert predictor.speculative_state_bits() < 128

    def test_named_configuration(self):
        predictor = TAGEGSCPredictor(SMALL_TAGE_GSC, name="my-config")
        assert predictor.name == "my-config"
