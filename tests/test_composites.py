"""Tests for the composite predictor configurations (repro.predictors.composites)."""

from __future__ import annotations

import pytest

from repro.predictors.base import BranchPredictor
from repro.predictors.composites import (
    CONFIGURATIONS,
    CompositeOptions,
    SidecarPredictor,
    build,
    build_named,
    configuration_names,
    factory,
)
from repro.sim.engine import simulate
from repro.trace.branch import conditional_branch


EXPECTED_CONFIGURATIONS = {
    "tage-gsc", "tage-gsc+sic", "tage-gsc+oh", "tage-gsc+imli",
    "tage-gsc+l", "tage-gsc+imli+l", "tage-gsc+loop", "tage-gsc+sic+loop",
    "tage-gsc+wh", "tage-gsc+sic+wh",
    "gehl", "gehl+sic", "gehl+oh", "gehl+imli",
    "gehl+l", "gehl+imli+l", "gehl+loop", "gehl+sic+loop",
    "gehl+wh", "gehl+sic+wh",
    "tage-sc-l", "tage-sc-l+imli",
}


class TestConfigurationRegistry:
    def test_registry_contains_every_paper_configuration(self):
        assert EXPECTED_CONFIGURATIONS <= set(configuration_names())

    def test_labels_match_options(self):
        assert CONFIGURATIONS["tage-gsc+imli"].label() == "tage-gsc+imli"
        assert CONFIGURATIONS["gehl+l"].label() == "gehl+l"
        assert CONFIGURATIONS["tage-gsc+sic+wh"].label() == "tage-gsc+sic+wh"
        assert CONFIGURATIONS["tage-gsc+loop"].label() == "tage-gsc+loop"

    def test_build_named_unknown_rejected(self):
        with pytest.raises(KeyError):
            build_named("tage-gsc+nonsense")

    def test_build_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            build(CompositeOptions(), profile="gigantic")

    def test_build_unknown_base_rejected(self):
        with pytest.raises(ValueError):
            build(CompositeOptions(base="neural-turing-machine"), profile="small")

    def test_every_registered_configuration_builds_small(self):
        for name in configuration_names():
            predictor = build_named(name, profile="small")
            assert isinstance(predictor, BranchPredictor)
            assert predictor.name == name
            assert predictor.storage_bits() > 0

    def test_factory_builds_fresh_instances(self):
        make = factory("tage-gsc+imli", profile="small")
        first, second = make(), make()
        assert first is not second
        assert first.name == second.name == "tage-gsc+imli"


class TestStorageOrdering:
    def test_imli_adds_little_storage(self):
        base = build_named("tage-gsc", profile="small").storage_bits()
        imli = build_named("tage-gsc+imli", profile="small").storage_bits()
        local = build_named("tage-gsc+l", profile="small").storage_bits()
        assert base < imli < local

    def test_combined_configuration_is_largest(self):
        imli_local = build_named("tage-gsc+imli+l", profile="small").storage_bits()
        local = build_named("tage-gsc+l", profile="small").storage_bits()
        assert imli_local > local

    def test_tage_sc_l_aliases_local_configuration(self):
        assert (
            build_named("tage-sc-l", profile="small").storage_bits()
            == build_named("tage-gsc+l", profile="small").storage_bits()
        )


class TestSidecarPredictor:
    def test_wraps_predictions_and_updates(self, easy_trace):
        predictor = build_named("tage-gsc+l", profile="small")
        assert isinstance(predictor, SidecarPredictor)
        result = simulate(predictor, easy_trace)
        assert result.conditional_branches == easy_trace.conditional_count

    def test_wormhole_configuration_has_inactive_loop_prediction(self):
        predictor = build_named("tage-gsc+wh", profile="small")
        assert isinstance(predictor, SidecarPredictor)
        assert predictor.wormhole is not None
        assert predictor.loop_predictor is not None
        assert predictor.use_loop_prediction is False

    def test_local_configuration_uses_loop_prediction(self):
        predictor = build_named("tage-gsc+l", profile="small")
        assert predictor.use_loop_prediction is True
        assert predictor.wormhole is None

    def test_plain_configurations_are_not_wrapped(self):
        assert not isinstance(build_named("tage-gsc", profile="small"), SidecarPredictor)
        assert not isinstance(build_named("gehl+imli", profile="small"), SidecarPredictor)

    def test_observe_unconditional_passthrough(self):
        from repro.trace.branch import BranchKind, BranchRecord

        predictor = build_named("gehl+l", profile="small")
        predictor.observe_unconditional(
            BranchRecord(pc=0x10, target=0x20, taken=True, kind=BranchKind.CALL)
        )  # must not raise

    def test_prediction_update_cycle(self):
        predictor = build_named("tage-gsc+imli+l", profile="small")
        record = conditional_branch(0x123, 0x140, taken=True)
        prediction = predictor.predict(record)
        predictor.update(record, prediction)  # must not raise


class TestOptionalFeatures:
    def test_imli_hashed_global_tables_option(self):
        options = CompositeOptions(base="tage-gsc", imli_sic=True, imli_global_tables=2)
        predictor = build(options, profile="small")
        record = conditional_branch(0x123, 0x140, taken=True)
        prediction = predictor.predict(record)
        predictor.update(record, prediction)
        assert predictor.storage_bits() > build_named("tage-gsc+sic", profile="small").storage_bits()

    def test_imli_hashed_global_tables_on_gehl(self):
        options = CompositeOptions(base="gehl", imli_global_tables=1)
        predictor = build(options, profile="small")
        record = conditional_branch(0x123, 0x140, taken=False)
        prediction = predictor.predict(record)
        predictor.update(record, prediction)

    def test_oh_update_delay_option(self):
        options = CompositeOptions(base="tage-gsc", imli_oh=True, oh_update_delay=63)
        predictor = build(options, profile="small")
        record = conditional_branch(0x123, 0x140, taken=True)
        for _ in range(5):
            prediction = predictor.predict(record)
            predictor.update(record, prediction)

    def test_default_profile_builds(self):
        predictor = build_named("tage-gsc+imli", profile="default")
        assert predictor.storage_bits() > build_named("tage-gsc+imli", profile="small").storage_bits()
