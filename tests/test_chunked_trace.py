"""Chunked trace layout: streaming/in-memory bit-identity and fingerprints.

The load-bearing guarantee of :mod:`repro.trace.chunked` is that a trace
streamed chunk by chunk through the engine is **bit-identical** to the
same trace loaded monolithically -- same results, same fingerprints, and
therefore the same :class:`~repro.store.ResultStore` cell keys and
record bytes.  These tests pin that for every registered configuration,
for ``simulate`` and ``simulate_many``, with chunk boundaries landing
mid-warmup.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.api.registry import default_registry
from repro.api.specs import PredictorSpec
from repro.sim.engine import simulate, simulate_many
from repro.store import ResultStore, profile_content, result_to_dict
from repro.trace.branch import BranchRecord
from repro.trace.chunked import (
    ChunkedTrace,
    ChunkedTraceWriter,
    chunked_fingerprint,
    is_chunked_dir,
    load_any_trace,
    load_chunked_trace,
    validate_manifest,
    write_chunked_trace,
)
from repro.trace.trace import save_trace, save_trace_binary
from repro.workloads.suites import generate_suite

#: Small but non-trivial: several hundred conditional branches so every
#: predictor does real work, chunked finely so many boundaries land in
#: interesting places (including inside any warmup window).
LENGTH = 400
CHUNK = 150


@pytest.fixture(scope="module")
def trace():
    return generate_suite(
        "cbp4like", target_conditional_branches=LENGTH, benchmarks=["SPEC2K6-00"]
    )[0]


@pytest.fixture(scope="module")
def chunked(trace, tmp_path_factory):
    directory = tmp_path_factory.mktemp("chunked") / "trace"
    write_chunked_trace(trace, directory, chunk_branches=CHUNK)
    return load_chunked_trace(directory)


def _predictor(name):
    return PredictorSpec.from_named(name, profile="small").resolve().build()


# --------------------------------------------------------------------- #
# Layout and identity
# --------------------------------------------------------------------- #


class TestLayout:
    def test_round_trip_records(self, trace, chunked):
        assert len(chunked) == len(trace)
        assert chunked.name == trace.name
        assert chunked.conditional_count == trace.conditional_count
        assert chunked.instruction_count == trace.instruction_count
        assert chunked.to_trace().columns() == trace.columns()

    def test_chunk_geometry(self, trace, chunked):
        expected = (len(trace) + CHUNK - 1) // CHUNK
        assert chunked.chunk_count == expected
        assert sum(len(chunked.chunk(i)) for i in range(expected)) == len(trace)

    def test_manifest_fingerprint_matches_monolithic(self, trace, chunked):
        # The manifest fingerprint is the chunked trace's identity; it is
        # derived from the chunk fingerprints, not equal to the monolithic
        # trace fingerprint (chunk geometry is part of the identity).
        manifest = chunked.manifest
        assert manifest["fingerprint"] == chunked_fingerprint(
            trace.name, [entry["fingerprint"] for entry in manifest["chunks"]]
        )

    def test_different_geometry_different_fingerprint(self, trace, tmp_path):
        write_chunked_trace(trace, tmp_path / "a", chunk_branches=CHUNK)
        write_chunked_trace(trace, tmp_path / "b", chunk_branches=CHUNK + 17)
        a = load_chunked_trace(tmp_path / "a")
        b = load_chunked_trace(tmp_path / "b")
        assert a.fingerprint() != b.fingerprint()
        assert a.to_trace().columns() == b.to_trace().columns()

    def test_validate_detects_corruption(self, trace, tmp_path):
        directory = tmp_path / "corrupt"
        write_chunked_trace(trace, directory, chunk_branches=CHUNK)
        loaded = load_chunked_trace(directory)
        loaded.validate()  # pristine layout passes
        victim = loaded.chunk_path(1)
        data = bytearray(victim.read_bytes())
        data[-1] ^= 0xFF
        victim.write_bytes(bytes(data))
        with pytest.raises(ValueError):
            load_chunked_trace(directory).validate()

    def test_validate_manifest_rejects_unsafe_chunk_files(self, chunked):
        manifest = json.loads(json.dumps(chunked.manifest))
        manifest["chunks"][0]["file"] = "../escape.rpt"
        with pytest.raises(ValueError):
            validate_manifest(manifest)

    def test_empty_trace_still_has_one_chunk(self, tmp_path):
        writer = ChunkedTraceWriter(tmp_path / "empty", name="empty")
        writer.close()
        loaded = load_chunked_trace(tmp_path / "empty")
        assert len(loaded) == 0
        assert loaded.chunk_count == 1

    def test_writer_append_matches_bulk(self, trace, tmp_path):
        writer = ChunkedTraceWriter(
            tmp_path / "appended", name=trace.name, chunk_branches=CHUNK
        )
        for i in range(len(trace)):
            writer.append(trace.record_at(i))
        writer.close()
        write_chunked_trace(trace, tmp_path / "bulk", chunk_branches=CHUNK)
        appended = load_chunked_trace(tmp_path / "appended")
        bulk = load_chunked_trace(tmp_path / "bulk")
        assert appended.fingerprint() == bulk.fingerprint()

    def test_load_any_trace(self, trace, chunked, tmp_path):
        assert is_chunked_dir(chunked.directory)
        assert isinstance(load_any_trace(chunked.directory), ChunkedTrace)
        save_trace(trace, tmp_path / "t.txt")
        save_trace_binary(trace, tmp_path / "t.bin")
        for path in (tmp_path / "t.txt", tmp_path / "t.bin"):
            loaded = load_any_trace(path)
            assert loaded.columns() == trace.columns()
        with pytest.raises(ValueError):
            load_any_trace(tmp_path)  # a directory without a manifest

    def test_pickle_drops_cache_and_survives(self, chunked):
        chunked.chunk(0)
        clone = pickle.loads(pickle.dumps(chunked))
        assert clone.fingerprint() == chunked.fingerprint()
        assert clone.to_trace().columns() == chunked.to_trace().columns()

    def test_bounded_decoded_cache(self, chunked):
        for i in range(chunked.chunk_count):
            chunked.chunk(i)
        assert len(chunked._cache) <= 2  # default cache_chunks


# --------------------------------------------------------------------- #
# Streaming vs in-memory bit-identity (satellite: every configuration)
# --------------------------------------------------------------------- #


def _result_key(result):
    return json.dumps(result_to_dict(result), sort_keys=True)


class TestBitIdentity:
    @pytest.mark.parametrize("name", default_registry().names())
    def test_simulate_every_configuration(self, name, trace, chunked):
        streamed = simulate(_predictor(name), chunked, track_per_pc=True)
        in_memory = simulate(_predictor(name), trace, track_per_pc=True)
        assert _result_key(streamed) == _result_key(in_memory)

    @pytest.mark.parametrize("warmup", [0.0, 0.25, 0.6])
    def test_warmup_spanning_chunk_boundaries(self, warmup, trace, chunked):
        # CHUNK=150 over ~LENGTH conditionals puts every tested warmup
        # cutoff strictly inside a chunk, so the carried warmup state
        # crosses at least one boundary.
        streamed = simulate(_predictor("tage-gsc"), chunked, warmup_fraction=warmup)
        in_memory = simulate(_predictor("tage-gsc"), trace, warmup_fraction=warmup)
        assert _result_key(streamed) == _result_key(in_memory)

    @pytest.mark.parametrize("track_per_pc", [False, True])
    def test_simulate_many(self, track_per_pc, trace, chunked):
        names = ["tage-gsc", "tage-gsc+imli", "gehl"]
        streamed = simulate_many(
            [_predictor(name) for name in names], chunked, track_per_pc=track_per_pc
        )
        in_memory = simulate_many(
            [_predictor(name) for name in names], trace, track_per_pc=track_per_pc
        )
        assert [_result_key(r) for r in streamed] == [
            _result_key(r) for r in in_memory
        ]

    def test_store_cell_keys_and_record_bytes(self, trace, chunked, tmp_path):
        """The store contract: a chunked trace seeded from a monolithic one
        yields the same cell keys and byte-identical record files when the
        decoded whole (``to_trace``) is what simulation consumes -- and
        streaming produces the same record content under the manifest key.
        """
        registry = default_registry()
        spec = PredictorSpec.from_named("tage-gsc", profile="small").resolve()
        sizes = registry.resolve_profile(spec.profile)
        key_chunked = ResultStore.cell_key(
            spec.content(), profile_content(sizes), chunked.fingerprint(), False
        )
        key_decoded = ResultStore.cell_key(
            spec.content(),
            profile_content(sizes),
            chunked.to_trace().fingerprint(),
            False,
        )
        # to_trace() keeps the manifest fingerprint, so both addressing
        # modes hit the same cell.
        assert key_chunked == key_decoded
        store_a = ResultStore(tmp_path / "a")
        store_b = ResultStore(tmp_path / "b")
        streamed = simulate(spec.build(), chunked)
        decoded = simulate(spec.build(), chunked.to_trace())
        store_a.put(key_chunked, streamed, label=spec.label,
                    trace_fingerprint=chunked.fingerprint())
        store_b.put(key_decoded, decoded, label=spec.label,
                    trace_fingerprint=chunked.to_trace().fingerprint())
        [record_a] = [p for p in (tmp_path / "a").rglob("*") if p.is_file()]
        [record_b] = [p for p in (tmp_path / "b").rglob("*") if p.is_file()]
        assert record_a.name == record_b.name
        doc_a = json.loads(record_a.read_bytes())
        doc_b = json.loads(record_b.read_bytes())
        doc_a.pop("created", None)
        doc_b.pop("created", None)
        doc_a.pop("checksum", None)  # covers "created", so write-time too
        doc_b.pop("checksum", None)
        assert doc_a == doc_b


class TestBranchRecordSurface:
    def test_record_at_round_trip(self, trace, chunked):
        probe = [0, CHUNK - 1, CHUNK, len(trace) - 1]
        decoded = chunked.to_trace()
        for index in probe:
            assert decoded.record_at(index) == trace.record_at(index)

    def test_iter_chunks_covers_everything(self, trace, chunked):
        records: list[BranchRecord] = []
        for chunk in chunked.iter_chunks():
            records.extend(chunk.record_at(i) for i in range(len(chunk)))
        assert records == [trace.record_at(i) for i in range(len(trace))]
