"""Tests for the IMLI counter (repro.core.imli) and the shared state."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.bits import fold_bits
from repro.common.history import LocalHistoryTable
from repro.core.component import SharedState
from repro.core.imli import IMLIState
from repro.trace.branch import BranchKind, BranchRecord, conditional_branch


def _backward(taken: bool) -> BranchRecord:
    return BranchRecord(pc=0x200, target=0x100, taken=taken)


def _forward(taken: bool) -> BranchRecord:
    return BranchRecord(pc=0x200, target=0x300, taken=taken)


class TestIMLIState:
    def test_initial_count_is_zero(self):
        assert IMLIState().count == 0

    def test_heuristic_matches_paper(self):
        """if backward: taken -> count += 1, not taken -> count = 0."""
        imli = IMLIState()
        imli.update(_backward(True))
        imli.update(_backward(True))
        assert imli.count == 2
        imli.update(_backward(False))
        assert imli.count == 0

    def test_forward_branches_are_ignored(self):
        imli = IMLIState()
        imli.update(_backward(True))
        imli.update(_forward(True))
        imli.update(_forward(False))
        assert imli.count == 1

    def test_non_conditional_branches_are_ignored(self):
        imli = IMLIState()
        imli.update(_backward(True))
        imli.update(
            BranchRecord(pc=0x400, target=0x100, taken=True, kind=BranchKind.UNCONDITIONAL)
        )
        assert imli.count == 1

    def test_saturation(self):
        imli = IMLIState(counter_bits=3)
        for _ in range(20):
            imli.update(_backward(True))
        assert imli.count == 7

    def test_observe_matches_update(self):
        a, b = IMLIState(), IMLIState()
        sequence = [(True, True), (True, False), (False, True), (True, True)]
        for backward, taken in sequence:
            record = _backward(taken) if backward else _forward(taken)
            a.update(record)
            b.observe(backward, taken)
        assert a.count == b.count

    def test_snapshot_restore(self):
        imli = IMLIState()
        imli.update(_backward(True))
        snapshot = imli.snapshot()
        imli.update(_backward(True))
        imli.restore(snapshot)
        assert imli.count == 1

    def test_restore_validates_range(self):
        with pytest.raises(ValueError):
            IMLIState(counter_bits=4).restore(16)

    def test_reset_and_storage(self):
        imli = IMLIState(counter_bits=10)
        imli.update(_backward(True))
        imli.reset()
        assert imli.count == 0
        assert imli.storage_bits() == 10

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            IMLIState(counter_bits=0)

    def test_counts_inner_loop_iterations(self, simple_loop_records):
        """Over a 5-iteration loop the counter reaches 4 and resets at the exit."""
        imli = IMLIState()
        seen_maximum = 0
        for record in simple_loop_records:
            imli.update(record)
            seen_maximum = max(seen_maximum, imli.count)
        assert seen_maximum == 4
        assert imli.count == 0  # the trace ends on a loop exit

    @given(st.lists(st.tuples(st.booleans(), st.booleans()), max_size=200))
    def test_reference_implementation_property(self, events):
        """The class matches a direct transcription of the paper's pseudo-code."""
        imli = IMLIState(counter_bits=10)
        reference = 0
        for backward, taken in events:
            imli.observe(backward, taken)
            if backward:
                if taken:
                    reference = min(reference + 1, 1023)
                else:
                    reference = 0
            assert imli.count == reference


class TestSharedState:
    def test_conditional_update_advances_everything(self):
        state = SharedState(local_history_table=LocalHistoryTable(64, 8))
        record = BranchRecord(pc=0x300, target=0x200, taken=True)
        state.update_conditional(record)
        assert state.global_history.value(1) == 1
        assert state.imli.count == 1
        assert state.local_histories.read(0x300) == 1

    def test_unconditional_update_only_touches_path(self):
        state = SharedState()
        record = BranchRecord(pc=0x300, target=0x400, taken=True, kind=BranchKind.CALL)
        state.update_unconditional(record)
        assert state.global_history.value(8) == 0
        assert state.imli.count == 0

    def test_folded_histories_stay_coherent(self):
        state = SharedState()
        folded = state.new_folded_history(length=13, width=5)
        outcomes = [True, False, True, True, False, True, False, False] * 5
        for index, taken in enumerate(outcomes):
            record = conditional_branch(pc=0x100 + index, target=0x200 + index, taken=taken)
            state.update_conditional(record)
        expected = fold_bits(state.global_history.value(13), 13, 5)
        assert folded.value() == expected

    def test_storage_and_checkpoint_bits(self):
        state = SharedState(history_capacity=512, path_capacity=32, imli_counter_bits=10)
        assert state.storage_bits() == 512 + 32 + 10
        # checkpoint: history pointers + IMLI counter, far smaller than storage
        assert state.checkpoint_bits() < state.storage_bits()
        assert state.checkpoint_bits() >= 10

    def test_checkpoint_bits_include_imli(self):
        small = SharedState(imli_counter_bits=4)
        large = SharedState(imli_counter_bits=12)
        assert large.checkpoint_bits() - small.checkpoint_bits() == 8
