"""Tests for the columnar trace storage, binary format and generation cache."""

from __future__ import annotations

import pytest

from repro.trace.branch import (
    CONDITIONAL_CODE,
    KIND_FROM_CODE,
    KIND_TO_CODE,
    BranchKind,
    BranchRecord,
    conditional_branch,
)
from repro.trace.trace import (
    Trace,
    load_trace,
    load_trace_binary,
    save_trace,
    save_trace_binary,
)
from repro.workloads.suites import generate_benchmark, get_benchmark


def _mixed_trace() -> Trace:
    trace = Trace(name="mixed", metadata={"seed": "7", "kernel": "demo"})
    trace.append(conditional_branch(0x100, 0x140, True, instruction_gap=3))
    trace.append(BranchRecord(pc=0x180, target=0x200, taken=True, kind=BranchKind.CALL))
    trace.append(conditional_branch(0x200, 0x180, False, instruction_gap=5))
    trace.append(BranchRecord(pc=0x240, target=0x100, taken=True, kind=BranchKind.RETURN))
    trace.append(BranchRecord(pc=0x280, target=0x300, taken=True, kind=BranchKind.INDIRECT))
    trace.append(
        BranchRecord(pc=0x2C0, target=0x300, taken=True, kind=BranchKind.UNCONDITIONAL)
    )
    return trace


class TestKindCodes:
    def test_codes_are_stable_and_bijective(self):
        assert KIND_TO_CODE[BranchKind.CONDITIONAL] == CONDITIONAL_CODE == 0
        assert len(KIND_TO_CODE) == len(BranchKind)
        for kind, code in KIND_TO_CODE.items():
            assert KIND_FROM_CODE[code] is kind


class TestColumnarStorage:
    def test_columns_match_records(self):
        trace = _mixed_trace()
        pcs, targets, takens, kinds, gaps = trace.columns()
        assert len(pcs) == len(trace)
        for index, record in enumerate(trace):
            assert pcs[index] == record.pc
            assert targets[index] == record.target
            assert bool(takens[index]) == record.taken
            assert KIND_FROM_CODE[kinds[index]] is record.kind
            assert gaps[index] == record.instruction_gap

    def test_cached_counts_track_append_and_extend(self):
        trace = Trace(name="t")
        assert trace.conditional_count == 0
        assert trace.instruction_count == 0
        trace.append(conditional_branch(1, 2, True, instruction_gap=4))
        assert trace.conditional_count == 1
        assert trace.instruction_count == 5
        trace.extend(
            [
                conditional_branch(3, 4, False, instruction_gap=2),
                BranchRecord(pc=5, target=6, taken=True, kind=BranchKind.CALL,
                             instruction_gap=1),
            ]
        )
        assert trace.conditional_count == 2
        assert trace.instruction_count == 5 + 3 + 2

    def test_extend_with_trace_bulk_appends(self):
        first = _mixed_trace()
        second = Trace(name="combined")
        second.extend(first)
        second.extend(first)
        assert len(second) == 2 * len(first)
        assert second.conditional_count == 2 * first.conditional_count
        assert second.instruction_count == 2 * first.instruction_count
        assert list(second)[: len(first)] == list(first)

    def test_records_view_indexing_slicing_equality(self):
        trace = _mixed_trace()
        view = trace.records
        assert len(view) == len(trace)
        assert view[0] == trace[0]
        assert view[1:3] == [trace[1], trace[2]]
        assert view == list(trace)
        assert trace.records == _mixed_trace().records

    def test_slice_recomputes_counts(self):
        trace = _mixed_trace()
        part = trace.slice(1, 4)
        assert len(part) == 3
        assert part.conditional_count == sum(
            1 for record in part if record.is_conditional
        )
        assert part.instruction_count == sum(
            record.instruction_gap + 1 for record in part
        )

    def test_static_branches_only_counts_conditionals(self):
        trace = _mixed_trace()
        static = trace.static_branches()
        assert static == {0x100: 1, 0x200: 1}


class TestBinaryFormat:
    def test_binary_roundtrip(self, tmp_path):
        trace = _mixed_trace()
        path = tmp_path / "mixed.rpt"
        save_trace_binary(trace, path)
        loaded = load_trace_binary(path)
        assert loaded.name == trace.name
        assert loaded.metadata == trace.metadata
        assert loaded.conditional_count == trace.conditional_count
        assert loaded.instruction_count == trace.instruction_count
        assert list(loaded) == list(trace)

    def test_binary_text_cross_roundtrip(self, tmp_path):
        trace = _mixed_trace()
        text_path = tmp_path / "trace.txt"
        binary_path = tmp_path / "trace.rpt"
        save_trace(trace, text_path)
        save_trace_binary(trace, binary_path)
        assert list(load_trace(text_path)) == list(load_trace_binary(binary_path))

    def test_load_trace_autodetects_binary(self, tmp_path):
        trace = _mixed_trace()
        path = tmp_path / "either.rpt"
        save_trace_binary(trace, path)
        loaded = load_trace(path)
        assert list(loaded) == list(trace)
        assert loaded.metadata == trace.metadata

    def test_binary_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bogus.rpt"
        path.write_bytes(b"NOTATRACE")
        with pytest.raises(ValueError):
            load_trace_binary(path)

    def test_empty_trace_roundtrip(self, tmp_path):
        path = tmp_path / "empty.rpt"
        save_trace_binary(Trace(name="empty"), path)
        loaded = load_trace_binary(path)
        assert len(loaded) == 0
        assert loaded.conditional_count == 0

    def test_generated_benchmark_roundtrip(self, tmp_path):
        trace = generate_benchmark(
            get_benchmark("cbp4like", "MM-4"), target_conditional_branches=200
        )
        path = tmp_path / "mm4.rpt"
        save_trace_binary(trace, path)
        loaded = load_trace_binary(path)
        assert loaded.conditional_count == trace.conditional_count
        assert loaded.columns() == trace.columns()

    def test_bytes_codec_matches_file_format(self, tmp_path):
        from repro.trace.trace import trace_from_bytes, trace_to_bytes

        trace = _mixed_trace()
        data = trace_to_bytes(trace)
        path = tmp_path / "mixed.rpt"
        save_trace_binary(trace, path)
        assert path.read_bytes() == data
        restored = trace_from_bytes(data)
        assert list(restored) == list(trace)
        assert restored.fingerprint() == trace.fingerprint()

    def test_bytes_codec_rejects_truncation(self):
        from repro.trace.trace import trace_from_bytes, trace_to_bytes

        data = trace_to_bytes(_mixed_trace())
        with pytest.raises(ValueError):
            trace_from_bytes(data[: len(data) - 4])
        with pytest.raises(ValueError):
            trace_from_bytes(data[:10])
        with pytest.raises(ValueError):
            trace_from_bytes(b"JUNK")


class TestGenerationCache:
    def test_cache_round_trips_identical_traces(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
        spec = get_benchmark("cbp4like", "MM-4")
        first = generate_benchmark(spec, target_conditional_branches=150)
        cache_files = list((tmp_path / "cache").glob("*.rpt"))
        assert len(cache_files) == 1
        second = generate_benchmark(spec, target_conditional_branches=150)
        assert list(first) == list(second)
        assert first.metadata == second.metadata
        assert first.name == second.name

    def test_cache_key_depends_on_parameters(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
        spec = get_benchmark("cbp4like", "MM-4")
        generate_benchmark(spec, target_conditional_branches=150)
        generate_benchmark(spec, target_conditional_branches=151)
        generate_benchmark(spec, target_conditional_branches=150, instruction_gap=5)
        assert len(list((tmp_path / "cache").glob("*.rpt"))) == 3

    def test_cache_disabled_by_env(self, tmp_path, monkeypatch):
        from repro.workloads import suites

        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        assert suites.trace_cache_dir() is None
        spec = get_benchmark("cbp4like", "MM-4")
        trace = generate_benchmark(spec, target_conditional_branches=120)
        assert trace.conditional_count >= 120

    def test_corrupt_cache_entry_is_regenerated(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
        spec = get_benchmark("cbp4like", "MM-4")
        first = generate_benchmark(spec, target_conditional_branches=150)
        (entry,) = (tmp_path / "cache").glob("*.rpt")
        entry.write_bytes(b"RPTRACE1garbage")
        second = generate_benchmark(spec, target_conditional_branches=150)
        assert list(first) == list(second)
