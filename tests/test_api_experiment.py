"""Tests for the Experiment facade and ResultSet (repro.api.experiment)."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.api import Experiment, PredictorSpec, Registry, ResultSet
from repro.predictors.simple import BimodalPredictor
from repro.sim.runner import SuiteRunner

BENCHMARKS = ["SPEC2K6-00", "SPEC2K6-04"]
LENGTH = 400


def _experiment(jobs: int = 1, **kwargs) -> Experiment:
    return Experiment(
        ["tage-gsc", "tage-gsc+sic"],
        suite="cbp4like",
        benchmarks=BENCHMARKS,
        length=LENGTH,
        profile="small",
        jobs=jobs,
        **kwargs,
    )


class TestExperiment:
    def test_names_are_coerced_to_specs(self):
        experiment = _experiment()
        assert all(isinstance(spec, PredictorSpec) for spec in experiment.specs)
        assert [spec.profile for spec in experiment.specs] == ["small", "small"]

    def test_run_produces_per_trace_results(self):
        results = _experiment().run()
        assert results.labels() == ["tage-gsc", "tage-gsc+sic"]
        assert results.trace_names == BENCHMARKS
        for label in results.labels():
            for name in BENCHMARKS:
                assert results.mpki(label, name) > 0
            assert results.storage_bits(label) > 0

    def test_baseline_is_added_and_deltas_computed(self):
        experiment = Experiment(
            ["tage-gsc+sic"], suite="cbp4like", benchmarks=BENCHMARKS,
            length=LENGTH, profile="small",
        )
        results = experiment.run(baseline="tage-gsc")
        assert results.baseline == "tage-gsc"
        assert results.labels()[0] == "tage-gsc"
        deltas = results.baseline_delta("tage-gsc+sic")
        assert set(deltas) == set(BENCHMARKS) | {"AVERAGE"}
        expected = (
            results.average_mpki("tage-gsc") - results.average_mpki("tage-gsc+sic")
        )
        assert deltas["AVERAGE"] == pytest.approx(expected)

    def test_parallel_run_is_bit_identical_to_serial(self):
        serial = _experiment(jobs=1).run()
        parallel = _experiment(jobs=2).run()
        for label in serial.labels():
            for name in BENCHMARKS:
                assert serial.mpki(label, name) == parallel.mpki(label, name)
            assert serial.storage_bits(label) == parallel.storage_bits(label)

    def test_explicit_traces_skip_suite_generation(self, easy_trace):
        results = Experiment(
            [PredictorSpec.from_named("tage-gsc", profile="small")],
            traces=[easy_trace],
        ).run()
        assert results.trace_names == [easy_trace.name]

    def test_scoped_registry_builders_run_in_process(self, easy_trace):
        registry = Registry.with_defaults()

        @registry.register_configuration("exp-bimodal")
        def _build(profile):
            return BimodalPredictor(entries=64)

        results = Experiment(
            ["exp-bimodal", "tage-gsc"],
            traces=[easy_trace],
            profile="small",
            registry=registry,
            jobs=2,  # builders cannot cross process boundaries; must not crash
        ).run()
        assert results.storage_bits("exp-bimodal") == 64 * 2

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            Experiment(
                [
                    PredictorSpec.from_named("tage-gsc", profile="small"),
                    PredictorSpec.from_named("tage-gsc", profile="default"),
                ],
                suite="cbp4like",
            )

    def test_same_spec_twice_is_deduplicated_not_rejected(self):
        experiment = Experiment(
            ["tage-gsc", "tage-gsc"], suite="cbp4like",
            benchmarks=BENCHMARKS[:1], length=LENGTH, profile="small",
        )
        assert len(experiment.run().labels()) == 1

    def test_needs_at_least_one_spec(self):
        with pytest.raises(ValueError):
            Experiment([], suite="cbp4like")

    def test_sweep_through_experiment(self):
        base = PredictorSpec.from_named("tage-gsc+oh", profile="small")
        specs = [base] + base.sweep(oh_update_delay=[15, 63])
        results = Experiment(
            specs, suite="cbp4like", benchmarks=BENCHMARKS[:1],
            length=LENGTH, profile="small",
        ).run(baseline=base)
        assert len(results.labels()) == 3
        assert results.baseline == "tage-gsc+oh"


class TestResultSetExport:
    @pytest.fixture(scope="class")
    def results(self) -> ResultSet:
        return _experiment().run(baseline="tage-gsc")

    def test_report_contains_tables(self, results):
        report = results.report()
        assert "AVERAGE" in report
        assert "MPKI reduction vs tage-gsc" in report

    def test_to_json_round_trips_through_parser(self, results):
        data = json.loads(results.to_json())
        assert data["traces"] == BENCHMARKS
        assert data["baseline"] == "tage-gsc"
        by_label = {entry["label"]: entry for entry in data["results"]}
        assert set(by_label) == {"tage-gsc", "tage-gsc+sic"}
        entry = by_label["tage-gsc+sic"]
        assert entry["spec"] == {"configuration": "tage-gsc+sic", "profile": "small"}
        assert set(entry["mpki"]) == set(BENCHMARKS)
        assert "delta_vs_baseline" in entry
        # the embedded spec rebuilds the same predictor
        spec = PredictorSpec.from_dict(entry["spec"])
        assert spec.build().storage_bits() == entry["storage_bits"]

    def test_to_csv_parses_and_matches_mpki(self, results):
        rows = list(csv.reader(io.StringIO(results.to_csv())))
        header = rows[0]
        assert header == ["benchmark", "tage-gsc", "tage-gsc+sic"]
        body = {row[0]: row[1:] for row in rows[1:]}
        assert set(body) == set(BENCHMARKS) | {"AVERAGE", "storage_kbits"}
        for name in BENCHMARKS:
            assert float(body[name][0]) == pytest.approx(results.mpki("tage-gsc", name))

    def test_unknown_label_rejected(self, results):
        with pytest.raises(KeyError):
            results.run_for("no-such-label")
        with pytest.raises(KeyError):
            results.mpki("no-such-label", BENCHMARKS[0])


class TestRunnerSpecPath:
    def test_run_spec_shares_cache_with_run(self, easy_trace, local_trace):
        runner = SuiteRunner([easy_trace, local_trace], profile="small")
        by_name = runner.run("tage-gsc")
        by_spec = runner.run_spec(PredictorSpec.from_named("tage-gsc", profile="small"))
        assert by_spec is by_name  # same memoisation entry

    def test_profiles_do_not_collide_in_the_cache(self, easy_trace):
        runner = SuiteRunner([easy_trace], profile="small")
        small = runner.run_spec(PredictorSpec.from_named("tage-gsc", profile="small"))
        default = runner.run_spec(
            PredictorSpec.from_named("tage-gsc", profile="default")
        )
        assert small is not default
        assert small.storage_bits < default.storage_bits

    def test_invalidate_drops_spec_entries(self, easy_trace):
        runner = SuiteRunner([easy_trace], profile="small")
        spec = PredictorSpec.from_named("tage-gsc", profile="small")
        first = runner.run_spec(spec)
        runner.invalidate("tage-gsc")
        assert runner.run_spec(spec) is not first

    def test_worker_entry_point_needs_no_parent_registrations(self, easy_trace):
        # Simulates a spawn-start worker: the profile name below is not
        # registered anywhere; the parent-resolved SizeProfile instance
        # shipped alongside the spec dict must be enough to build.
        import dataclasses

        from repro.api import default_registry
        from repro.sim.runner import _simulate_spec

        sizes = dataclasses.replace(
            default_registry().resolve_profile("small"), sic_entries=64
        )
        spec = PredictorSpec.from_named(
            "tage-gsc+sic", profile="only-in-parent"
        ).resolve()
        result = _simulate_spec(spec.to_dict(), sizes, easy_trace, False)
        assert result.predictor_name == "tage-gsc+sic"
        assert result.storage_bits < default_registry().build(
            "tage-gsc+sic", profile="small"
        ).storage_bits()

    def test_registry_mutation_invalidates_cache(self, easy_trace):
        from repro.api import CompositeOptions, default_registry, register_configuration

        runner = SuiteRunner([easy_trace], profile="small")
        register_configuration("mut-cfg", CompositeOptions(base="tage-gsc"))
        try:
            spec = PredictorSpec.from_named("mut-cfg", profile="small")
            first = runner.run_spec(spec)
            register_configuration(
                "mut-cfg", CompositeOptions(base="gehl", imli_sic=True),
                overwrite=True,
            )
            second = runner.run_spec(spec)
            assert second is not first
            assert second.storage_bits != first.storage_bits
            # the stale entry is replaced in place, not accumulated
            assert len([k for k in runner._cache if k[0] == "mut-cfg"]) == 1
        finally:
            default_registry().unregister("mut-cfg")

    def test_additive_registration_keeps_cache_warm(self, easy_trace):
        from repro.api import CompositeOptions, default_registry, register_configuration

        runner = SuiteRunner([easy_trace], profile="small")
        spec = PredictorSpec.from_named("tage-gsc", profile="small")
        first = runner.run_spec(spec)
        register_configuration("brand-new-cfg", CompositeOptions(base="gehl"))
        try:
            assert runner.run_spec(spec) is first
        finally:
            default_registry().unregister("brand-new-cfg")

    def test_run_specs_rejects_label_collisions(self, easy_trace):
        from repro.api import CompositeOptions

        runner = SuiteRunner([easy_trace], profile="small")
        with pytest.raises(ValueError):
            runner.run_specs([
                PredictorSpec(base="tage-gsc", profile="small", name="x"),
                PredictorSpec(
                    base=CompositeOptions(base="gehl"), profile="small", name="x"
                ),
            ])

    def test_from_named_label_keyword(self, easy_trace):
        spec = PredictorSpec.from_named("tage-gsc", profile="small", label="mine")
        assert spec.label == "mine"
        assert spec.base == "tage-gsc"

    def test_alternating_registries_stay_memoised(self, easy_trace):
        runner = SuiteRunner([easy_trace], profile="small")
        spec = PredictorSpec.from_named("tage-gsc", profile="small")
        scoped = Registry.with_defaults()
        via_default = runner.run_spec(spec)
        via_scoped = runner.run_spec(spec, registry=scoped)
        assert runner.run_spec(spec) is via_default
        assert runner.run_spec(spec, registry=scoped) is via_scoped

    def test_different_factories_do_not_share_cache(self, easy_trace):
        from repro.predictors.simple import BimodalPredictor

        runner = SuiteRunner([easy_trace], profile="small")
        small = runner.run("custom", factory=lambda: BimodalPredictor(entries=64))
        large = runner.run("custom", factory=lambda: BimodalPredictor(entries=128))
        assert large.storage_bits == 2 * small.storage_bits

    def test_renamed_spec_does_not_poison_name_cache(self, easy_trace):
        from repro.api import CompositeOptions

        runner = SuiteRunner([easy_trace], profile="small")
        imposter = PredictorSpec(
            base=CompositeOptions(base="gehl"), profile="small", name="tage-gsc"
        )
        imposter_run = runner.run_spec(imposter)
        real_run = runner.run("tage-gsc")
        assert real_run is not imposter_run
        assert real_run.storage_bits != imposter_run.storage_bits

    def test_baseline_label_collision_rejected(self, easy_trace):
        from repro.api import CompositeOptions

        experiment = Experiment(
            ["tage-gsc"], traces=[easy_trace], profile="small"
        )
        imposter = PredictorSpec(
            base=CompositeOptions(base="gehl"), profile="small", name="tage-gsc"
        )
        with pytest.raises(ValueError):
            experiment.run(baseline=imposter)

    def test_scoped_registry_does_not_hit_default_cache(self, easy_trace):
        from repro.api import CompositeOptions

        registry = Registry.with_defaults()
        registry.register_configuration(
            "tage-gsc", CompositeOptions(base="tage-gsc", imli_sic=True),
            overwrite=True,
        )
        runner = SuiteRunner([easy_trace], profile="small")
        spec = PredictorSpec.from_named("tage-gsc", profile="small")
        default_run = runner.run_spec(spec)
        scoped_run = runner.run_spec(spec, registry=registry)
        assert scoped_run is not default_run
        assert scoped_run.storage_bits > default_run.storage_bits  # +sic tables

    def test_run_specs_batch_parallel_matches_serial(self, easy_trace, local_trace):
        specs = [
            PredictorSpec.from_named(name, profile="small")
            for name in ("tage-gsc", "tage-gsc+sic", "gehl")
        ]
        serial_runner = SuiteRunner([easy_trace, local_trace], profile="small")
        serial = serial_runner.run_specs(specs)
        parallel_runner = SuiteRunner(
            [easy_trace, local_trace], profile="small", max_workers=2
        )
        try:
            parallel = parallel_runner.run_specs(specs)
        finally:
            parallel_runner.close()
        assert set(serial) == set(parallel)
        for label in serial:
            assert [r.mispredictions for r in serial[label].results] == [
                r.mispredictions for r in parallel[label].results
            ]


class TestProgressAccounting:
    """The runner's ``progress`` hook counts every cell exactly once."""

    def _collect(self):
        seen = []
        return seen, lambda done, total: seen.append((done, total))

    def test_serial_run_counts_every_cell(self, easy_trace, local_trace):
        seen, hook = self._collect()
        specs = [
            PredictorSpec.from_named(name, profile="small")
            for name in ("tage-gsc", "gehl")
        ]
        runner = SuiteRunner([easy_trace, local_trace], profile="small", progress=hook)
        runner.run_specs(specs)
        assert seen[0] == (0, 4)
        assert seen[-1] == (4, 4)
        assert [done for done, _ in seen] == sorted(done for done, _ in seen)

    def test_memoised_rerun_jumps_to_total(self, easy_trace):
        seen, hook = self._collect()
        spec = PredictorSpec.from_named("tage-gsc", profile="small")
        runner = SuiteRunner([easy_trace], profile="small", progress=hook)
        runner.run_specs([spec])
        seen.clear()
        runner.run_specs([spec])  # fully memoised
        assert seen == [(0, 1), (1, 1)]

    def test_store_hits_count_as_completed(self, easy_trace, tmp_path):
        from repro.store import ResultStore

        store = ResultStore(tmp_path / "store")
        spec = PredictorSpec.from_named("tage-gsc", profile="small")
        SuiteRunner([easy_trace], profile="small", store=store).run_spec(spec)
        seen, hook = self._collect()
        resumed = SuiteRunner(
            [easy_trace], profile="small", store=store, progress=hook
        )
        resumed.run_spec(spec)
        assert seen[-1] == (1, 1)
        assert store.hits == 1

    def test_pool_batch_counts_every_cell(self, easy_trace, local_trace):
        seen, hook = self._collect()
        specs = [
            PredictorSpec.from_named(name, profile="small")
            for name in ("tage-gsc", "gehl")
        ]
        runner = SuiteRunner(
            [easy_trace, local_trace], profile="small", max_workers=2, progress=hook
        )
        try:
            runner.run_specs(specs)
        finally:
            runner.close()
        assert seen[-1] == (4, 4)


class TestBackendSelection:
    def test_unknown_backend_string_is_rejected(self, easy_trace):
        with pytest.raises(ValueError):
            SuiteRunner([easy_trace], backend="quantum")

    def test_backend_object_needs_execute(self, easy_trace):
        with pytest.raises(TypeError):
            SuiteRunner([easy_trace], backend=object())

    def test_serial_backend_forces_in_process(self, easy_trace, local_trace):
        # With backend="serial" the pool is never created even though
        # max_workers asks for one.
        runner = SuiteRunner(
            [easy_trace, local_trace], profile="small",
            max_workers=4, backend="serial",
        )
        specs = [
            PredictorSpec.from_named(name, profile="small")
            for name in ("tage-gsc", "gehl")
        ]
        runner.run_specs(specs)
        assert runner._pool is None

    def test_custom_backend_object_runs_cells(self, easy_trace, local_trace):
        from repro.sim.runner import _simulate_spec

        class InlineBackend:
            """Executes the runner's batch in-process (test double)."""

            name = "inline"
            calls = 0

            def execute(self, specs, sizes, traces, pending,
                        track_per_pc=False, progress=None):
                type(self).calls += 1
                results = {}
                for label, index in pending:
                    results[(label, index)] = _simulate_spec(
                        specs[label].to_dict(), sizes[label],
                        traces[index], track_per_pc,
                    )
                if progress is not None:
                    progress(len(pending), len(pending))
                return results

        specs = [
            PredictorSpec.from_named(name, profile="small")
            for name in ("tage-gsc", "gehl")
        ]
        serial = SuiteRunner([easy_trace, local_trace], profile="small").run_specs(specs)
        backend_runner = SuiteRunner(
            [easy_trace, local_trace], profile="small", backend=InlineBackend()
        )
        via_backend = backend_runner.run_specs(specs)
        assert InlineBackend.calls == 1
        for label in serial:
            assert [r.mispredictions for r in serial[label].results] == [
                r.mispredictions for r in via_backend[label].results
            ]
