"""Tests for the declarative spec and registry layer (repro.api)."""

from __future__ import annotations

import pytest

from repro.api import (
    CompositeOptions,
    PredictorSpec,
    Registry,
    SizeProfile,
    default_registry,
    register_configuration,
)
from repro.predictors.composites import (
    CONFIGURATIONS,
    _PROFILES,
    build_named,
    configuration_names,
)
from repro.predictors.simple import BimodalPredictor
from repro.sim.engine import simulate


class TestSpecRoundTrip:
    @pytest.mark.parametrize("name", sorted(CONFIGURATIONS))
    def test_every_legacy_configuration_round_trips(self, name):
        spec = PredictorSpec.from_named(name, profile="small")
        assert PredictorSpec.from_dict(spec.to_dict()) == spec
        assert PredictorSpec.from_json(spec.to_json()) == spec
        assert spec.label == name

    @pytest.mark.parametrize("name", sorted(CONFIGURATIONS))
    def test_round_tripped_spec_builds_bit_identical_predictor(self, name, easy_trace):
        spec = PredictorSpec.from_dict(
            PredictorSpec.from_named(name, profile="small").to_dict()
        )
        via_spec = simulate(spec.build(), easy_trace)
        via_legacy = simulate(build_named(name, profile="small"), easy_trace)
        assert via_spec.storage_bits == via_legacy.storage_bits
        assert via_spec.mispredictions == via_legacy.mispredictions
        assert via_spec.predictor_name == via_legacy.predictor_name == name

    def test_options_base_round_trips(self):
        spec = PredictorSpec(
            base=CompositeOptions(base="gehl", imli_sic=True, imli_global_tables=1),
            profile="small",
            overrides={"oh_update_delay": 63},
            name="my-variant",
        )
        clone = PredictorSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.label == "my-variant"

    def test_resolve_pins_the_registry_label(self):
        # tage-sc-l's options label would be tage-gsc+l; resolving must
        # keep the registry name so cache keys and reports stay stable.
        resolved = PredictorSpec.from_named("tage-sc-l", profile="small").resolve()
        assert isinstance(resolved.base, CompositeOptions)
        assert resolved.label == "tage-sc-l"
        assert PredictorSpec.from_dict(resolved.to_dict()) == resolved

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            PredictorSpec.from_dict({"configuration": "tage-gsc", "profil": "small"})

    def test_from_dict_needs_exactly_one_base(self):
        with pytest.raises(ValueError):
            PredictorSpec.from_dict({"profile": "small"})
        with pytest.raises(ValueError):
            PredictorSpec.from_dict(
                {"configuration": "tage-gsc", "options": {"base": "gehl"}}
            )

    def test_invalid_base_type_rejected(self):
        with pytest.raises(TypeError):
            PredictorSpec(base=42)

    def test_unknown_override_rejected_at_build(self):
        spec = PredictorSpec.from_named("tage-gsc", profile="small", no_such_knob=1)
        with pytest.raises(ValueError):
            spec.build()


class TestSweep:
    def test_grid_expansion_is_cartesian(self):
        spec = PredictorSpec.from_named("tage-gsc+oh", profile="small")
        grid = spec.sweep(oh_update_delay=[0, 15, 63], imli_sic=[False, True])
        assert len(grid) == 6
        assert len({s.label for s in grid}) == 6
        assert all(s.profile == "small" for s in grid)

    def test_scalar_axis_counts_as_singleton(self):
        spec = PredictorSpec.from_named("gehl", profile="small")
        grid = spec.sweep(imli_sic=True, imli_global_tables=[0, 1, 2])
        assert len(grid) == 3
        assert all(s.overrides["imli_sic"] is True for s in grid)

    def test_existing_overrides_are_merged(self):
        spec = PredictorSpec.from_named("tage-gsc", profile="small", imli_sic=True)
        (only,) = spec.sweep(imli_oh=[True])
        assert only.overrides == {"imli_sic": True, "imli_oh": True}

    def test_empty_grid_returns_copy(self):
        spec = PredictorSpec.from_named("tage-gsc", profile="small")
        assert spec.sweep() == [spec]

    def test_swept_specs_build(self, easy_trace):
        spec = PredictorSpec.from_named("tage-gsc+oh", profile="small")
        for variant in spec.sweep(oh_update_delay=[0, 63]):
            result = simulate(variant.build(), easy_trace)
            assert result.predictor_name == variant.label


class TestRegistry:
    def test_default_registry_mirrors_legacy_dict(self):
        registry = default_registry()
        assert set(CONFIGURATIONS) <= set(registry.names())
        assert set(registry.profile_names()) == set(_PROFILES)

    @pytest.mark.parametrize("name", ["tage-gsc", "gehl+imli", "tage-sc-l"])
    def test_registry_build_matches_build_named(self, name, easy_trace):
        via_registry = default_registry().build(name, profile="small")
        via_shim = build_named(name, profile="small")
        assert via_registry.storage_bits() == via_shim.storage_bits()
        assert (
            simulate(via_registry, easy_trace).mispredictions
            == simulate(via_shim, easy_trace).mispredictions
        )

    def test_register_options_visible_through_shims(self):
        options = CompositeOptions(base="gehl", imli_sic=True)
        register_configuration("test-shim-visibility", options)
        try:
            assert "test-shim-visibility" in CONFIGURATIONS
            assert "test-shim-visibility" in configuration_names()
            predictor = build_named("test-shim-visibility", profile="small")
            assert predictor.name == "test-shim-visibility"
        finally:
            default_registry().unregister("test-shim-visibility")
        assert "test-shim-visibility" not in CONFIGURATIONS

    def test_builder_decorator_registration(self):
        registry = Registry.with_defaults()

        @registry.register_configuration("test-bimodal")
        def _build(profile, entries=64):
            return BimodalPredictor(entries=entries)

        assert "test-bimodal" in registry
        predictor = registry.build("test-bimodal", profile="small")
        assert predictor.name == "test-bimodal"
        bigger = registry.build("test-bimodal", profile="small", entries=128)
        assert bigger.storage_bits() == 2 * predictor.storage_bits()
        # scoped: the default registry never saw it
        assert "test-bimodal" not in default_registry()

    def test_duplicate_registration_requires_overwrite(self):
        registry = Registry.with_defaults()
        with pytest.raises(ValueError):
            registry.register_configuration("tage-gsc", CompositeOptions())
        registry.register_configuration(
            "tage-gsc", CompositeOptions(base="gehl"), overwrite=True
        )
        assert registry.options("tage-gsc").base == "gehl"

    def test_unknown_names_rejected(self):
        registry = Registry.with_defaults()
        with pytest.raises(KeyError):
            registry.build("no-such-predictor", profile="small")
        with pytest.raises(KeyError):
            registry.options("no-such-predictor")
        with pytest.raises(KeyError):
            registry.unregister("no-such-predictor")
        with pytest.raises(KeyError):
            registry.resolve_profile("no-such-profile")

    def test_register_custom_profile(self, easy_trace):
        registry = Registry.with_defaults()
        small = registry.resolve_profile("small")

        @registry.register_profile("test-tiny")
        def _tiny():
            import dataclasses

            return dataclasses.replace(small, sic_entries=64, loop_entries=4)

        assert "test-tiny" in registry.profile_names()
        assert isinstance(registry.resolve_profile("test-tiny"), SizeProfile)
        tiny = registry.build("tage-gsc+sic+loop", profile="test-tiny")
        small_build = registry.build("tage-gsc+sic+loop", profile="small")
        assert tiny.storage_bits() < small_build.storage_bits()

    def test_spec_builds_against_scoped_registry(self, easy_trace):
        registry = Registry.with_defaults()

        @registry.register_configuration("test-custom")
        def _build(profile):
            return BimodalPredictor(entries=32)

        spec = PredictorSpec.from_named("test-custom", profile="small")
        result = simulate(spec.build(registry), easy_trace)
        assert result.predictor_name == "test-custom"
        # builder-based specs cannot be made declarative
        assert spec.resolve(registry) is spec
