"""Batched simulation must be bit-identical to per-cell simulation.

:func:`repro.sim.engine.simulate_many` (and everything layered on it: the
suite runner's batched serial/pool paths, the distributed lease batching)
is a pure execution-shape optimisation -- these tests pin that claim for
every registered configuration, for warm-up and per-PC bookkeeping, and
for the persistent store's cell keys, which must not see batching at all.
"""

from __future__ import annotations

import io

import pytest

from repro.api.experiment import Experiment
from repro.api.registry import default_registry
from repro.api.specs import PredictorSpec
from repro.dist import Coordinator, protocol
from repro.dist.worker import Worker
from repro.predictors.shared_core import plan_groups
from repro.predictors.simple import AlwaysTakenPredictor, BimodalPredictor
from repro.sim.engine import ENGINE_VERSION, simulate, simulate_many
from repro.sim.runner import DEFAULT_BATCH_CELLS, SuiteRunner
from repro.store import ResultStore
from repro.workloads.suites import generate_suite

LENGTH = 150
BENCHMARKS = ["SPEC2K6-00", "SPEC2K6-12"]


@pytest.fixture(scope="module")
def traces():
    return generate_suite(
        "cbp4like", target_conditional_branches=LENGTH, benchmarks=BENCHMARKS
    )


def _build(name):
    return default_registry().build(name, profile="small")


def _assert_identical(batched, serial):
    assert batched.trace_name == serial.trace_name
    assert batched.predictor_name == serial.predictor_name
    assert batched.mispredictions == serial.mispredictions
    assert batched.conditional_branches == serial.conditional_branches
    assert batched.instructions == serial.instructions
    assert batched.storage_bits == serial.storage_bits
    assert batched.per_pc_mispredictions == serial.per_pc_mispredictions


class TestSimulateMany:
    @pytest.mark.parametrize(
        "warmup,track", [(0.0, False), (0.0, True), (0.3, False), (0.25, True)]
    )
    def test_every_registered_configuration_bit_identical(
        self, traces, warmup, track
    ):
        names = default_registry().names()
        for trace in traces:
            batched = simulate_many(
                [_build(name) for name in names],
                trace,
                warmup_fraction=warmup,
                track_per_pc=track,
            )
            for name, result in zip(names, batched):
                serial = simulate(
                    _build(name), trace, warmup_fraction=warmup, track_per_pc=track
                )
                _assert_identical(result, serial)

    def test_empty_batch(self, traces):
        assert simulate_many([], traces[0]) == []

    def test_single_predictor_matches_simulate(self, traces):
        [batched] = simulate_many([_build("tage-gsc")], traces[0])
        _assert_identical(batched, simulate(_build("tage-gsc"), traces[0]))

    def test_reference_path_forced(self, traces):
        names = ["tage-gsc", "gehl"]
        batched = simulate_many(
            [_build(name) for name in names], traces[0], use_fast_path=False
        )
        for name, result in zip(names, batched):
            _assert_identical(
                result, simulate(_build(name), traces[0], use_fast_path=False)
            )

    def test_mixed_batch_falls_back_per_predictor(self, traces):
        # AlwaysTakenPredictor has no fast-path protocol, so the batch
        # cannot share a traversal -- results must still be identical.
        predictors = [_build("tage-gsc"), AlwaysTakenPredictor(), BimodalPredictor()]
        batched = simulate_many(predictors, traces[0])
        serial = [
            simulate(p, traces[0])
            for p in (_build("tage-gsc"), AlwaysTakenPredictor(), BimodalPredictor())
        ]
        for result, expected in zip(batched, serial):
            assert result.mispredictions == expected.mispredictions
            assert result.conditional_branches == expected.conditional_branches

    def test_fast_path_required_raises_on_mixed_batch(self, traces):
        with pytest.raises(ValueError, match="fast-path"):
            simulate_many(
                [_build("tage-gsc"), AlwaysTakenPredictor()],
                traces[0],
                use_fast_path=True,
            )

    def test_bad_warmup_fraction_rejected(self, traces):
        with pytest.raises(ValueError):
            simulate_many([_build("tage-gsc")], traces[0], warmup_fraction=1.0)


def _sweep_specs():
    base = PredictorSpec.from_named("tage-gsc+oh", profile="small")
    return [base] + base.sweep(oh_update_delay=[7, 15, 31, 63])


def _store_records(store_dir):
    """key -> record, with write-time-only fields dropped."""
    records = {}
    for record in ResultStore(store_dir).records():
        record = dict(record)
        record.pop("created", None)
        record.pop("age_seconds", None)
        record.pop("path", None)
        record.pop("checksum", None)  # covers "created", so write-time too
        records[record["key"]] = record
    return records


class TestBatchedSweepPath:
    def test_engine_version_unchanged_by_batching(self):
        # Batching is a pure-speed change; the store folds ENGINE_VERSION
        # into every cell key, so bumping it here would retire every
        # stored result for no semantic reason.
        assert ENGINE_VERSION == 1

    def test_store_cells_identical_across_batch_modes(self, traces, tmp_path):
        specs = _sweep_specs()
        runs = {}
        for mode, batch in (("batched", None), ("per-cell", False), ("pairs", 2)):
            store = tmp_path / mode
            runner = SuiteRunner(
                traces, profile="small", store=str(store), batch=batch
            )
            runs[mode] = runner.run_specs(specs)
            runner.close()
        batched = _store_records(tmp_path / "batched")
        per_cell = _store_records(tmp_path / "per-cell")
        pairs = _store_records(tmp_path / "pairs")
        assert batched.keys() == per_cell.keys() == pairs.keys()
        assert len(batched) == len(specs) * len(traces)
        assert batched == per_cell == pairs  # full records, not just keys
        for mode in ("per-cell", "pairs"):
            for label, run in runs[mode].items():
                for ours, theirs in zip(run.results, runs["batched"][label].results):
                    _assert_identical(ours, theirs)

    def test_experiment_exports_identical_across_batch_modes(self, traces):
        specs = _sweep_specs()
        outputs = []
        for batch in (None, False, 3):
            results = Experiment(
                specs, traces=traces, profile="small", store=False, batch=batch
            ).run(baseline=specs[0])
            outputs.append((results.to_json(), results.to_csv()))
        assert outputs[0] == outputs[1] == outputs[2]

    def test_batched_pool_matches_serial(self, traces):
        specs = _sweep_specs()
        serial = SuiteRunner(traces, profile="small").run_specs(specs)
        pooled_runner = SuiteRunner(traces, profile="small", max_workers=2)
        try:
            pooled = pooled_runner.run_specs(specs)
        finally:
            pooled_runner.close()
        for label in serial:
            for ours, theirs in zip(serial[label].results, pooled[label].results):
                _assert_identical(ours, theirs)

    def test_bad_cell_in_batch_surfaces_its_own_error(self, traces):
        good = PredictorSpec.from_named("tage-gsc", profile="small")
        bad = PredictorSpec.from_named(
            "tage-gsc", profile="small", label="bad", nonsense_knob=1
        )
        runner = SuiteRunner([traces[0]], profile="small")
        # The per-cell path raises ValueError for an unknown override;
        # the batched path must surface the same error, not a batch
        # envelope around it.
        with pytest.raises(ValueError, match="nonsense_knob"):
            runner.run_specs([good, bad])

    def test_batch_validation(self, traces):
        with pytest.raises(ValueError):
            SuiteRunner(traces, batch=0)


def _oh_grid(count=8, profile="small"):
    """``tage-gsc+oh`` grid over a head-only knob: one shared core."""
    delays = [0, 1, 3, 7, 15, 31, 63, 127][:count]
    return PredictorSpec.from_named("tage-gsc+oh", profile=profile).sweep(
        oh_update_delay=delays
    )


class TestSharedCoreGrouping:
    """Shared-core batch grouping: formation rules and bit-identity.

    ``oh_update_delay`` only moves the IMLI-OH head component, so an
    ``oh_update_delay`` grid shares one TAGE+history core; ``local``
    changes the shared state itself, so it must split the group.
    """

    def test_shared_grid_forms_one_group(self):
        predictors = [spec.build() for spec in _oh_grid()]
        plan = plan_groups(predictors)
        assert plan is not None
        groups, solos = plan
        assert solos == []
        assert len(groups) == 1 and groups[0].kind == "tage-gsc"
        assert sorted(groups[0].indices) == list(range(len(predictors)))

    def test_batch_of_one_stays_flat(self):
        # A lone member never pays grouping overhead.
        assert plan_groups([_build("tage-gsc")]) is None

    def test_core_mutating_override_must_not_group(self):
        base = PredictorSpec.from_named("tage-gsc+oh", profile="small")
        with_local = PredictorSpec.from_named(
            "tage-gsc+oh", profile="small", local=True
        )
        built = [base.build(), with_local.build()]
        assert built[0].shared_core.key != built[1].shared_core.key
        assert plan_groups(built) is None

    def test_profile_mismatch_must_not_group(self):
        small = PredictorSpec.from_named("tage-gsc+oh", profile="small")
        default = PredictorSpec.from_named("tage-gsc+oh", profile="default")
        assert plan_groups([small.build(), default.build()]) is None

    def test_trained_member_stays_solo(self, traces):
        predictors = [spec.build() for spec in _oh_grid(3)]
        simulate(predictors[1], traces[0])  # no longer pristine
        plan = plan_groups(predictors)
        assert plan is not None
        groups, solos = plan
        assert solos == [1]
        assert sorted(groups[0].indices) == [0, 2]

    def test_mixed_shared_and_foreign_cores(self, traces):
        # A tage-gsc group, a gehl group, and a solo bimodal in one batch.
        specs = _oh_grid(3) + [
            PredictorSpec.from_named("gehl+sic", profile="small"),
            PredictorSpec.from_named("gehl+imli", profile="small"),
        ]
        predictors = [spec.build() for spec in specs] + [BimodalPredictor()]
        plan = plan_groups(predictors)
        assert plan is not None
        groups, solos = plan
        assert sorted(group.kind for group in groups) == ["gehl", "tage-gsc"]
        assert solos == [5]
        batched = simulate_many(predictors, traces[0])
        fresh = [spec.build() for spec in specs] + [BimodalPredictor()]
        for result, predictor in zip(batched, fresh):
            _assert_identical(result, simulate(predictor, traces[0]))

    @pytest.mark.parametrize(
        "warmup,track", [(0.0, False), (0.0, True), (0.3, False), (0.25, True)]
    )
    def test_share_cores_false_bit_identical(self, traces, warmup, track):
        # share_cores=False is the pre-grouping batched path; equality
        # here pins the grouped executor to it bit for bit.
        specs = _oh_grid()
        for trace in traces:
            grouped = simulate_many(
                [spec.build() for spec in specs],
                trace,
                warmup_fraction=warmup,
                track_per_pc=track,
            )
            flat = simulate_many(
                [spec.build() for spec in specs],
                trace,
                warmup_fraction=warmup,
                track_per_pc=track,
                share_cores=False,
            )
            for ours, theirs in zip(grouped, flat):
                _assert_identical(ours, theirs)

    def test_grouped_members_left_untouched(self, traces):
        # The group runs fresh cores/heads; the originals stay pristine
        # (documented contract -- callers must not rely on batch members
        # being trained after a grouped run).
        predictors = [spec.build() for spec in _oh_grid(4)]
        simulate_many(predictors, traces[0])
        assert plan_groups(predictors) is not None  # still pristine

    def test_mixed_grid_store_records_identical(self, traces, tmp_path):
        specs = _oh_grid(3) + [
            PredictorSpec.from_named("gehl+imli", profile="small"),
            PredictorSpec.from_named(
                "tage-gsc+oh", profile="small", label="oh-local", local=True
            ),
        ]
        for mode, batch in (("batched", None), ("per-cell", False)):
            runner = SuiteRunner(
                traces, profile="small", store=str(tmp_path / mode), batch=batch
            )
            runner.run_specs(specs)
            runner.close()
        batched = _store_records(tmp_path / "batched")
        per_cell = _store_records(tmp_path / "per-cell")
        assert batched.keys() == per_cell.keys()
        assert len(batched) == len(specs) * len(traces)
        assert batched == per_cell


class TestDistBatching:
    def test_lease_grant_has_trace_affinity(self, traces):
        specs = _sweep_specs()
        with Coordinator() as coordinator:
            job = coordinator.submit(specs, traces)
            state, cells = coordinator._lease(owner=1, max_cells=len(specs))
            assert state == "work"
            # Only same-trace cells travel in one grant, and with five
            # pending specs on the first trace the grant holds all five.
            assert len(cells) == len(specs)
            assert len({cell.trace_fingerprint for cell in cells}) == 1
            assert job.total == len(specs) * len(traces)

    def test_lease_grant_clusters_same_core_cells(self, traces):
        # Admission sorts each trace's cells by shared-core key, so a
        # batched grant hands a worker cells its simulate_many call can
        # actually group -- even when the submitted specs interleave
        # core families.
        gehl = PredictorSpec.from_named("gehl+imli", profile="small")
        tage = _oh_grid(3)
        interleaved = [tage[0], gehl, tage[1], gehl.sweep(imli_sic=[True])[0], tage[2]]
        with Coordinator() as coordinator:
            coordinator.submit(interleaved, traces)
            state, cells = coordinator._lease(owner=1, max_cells=2)
            assert state == "work" and len(cells) == 2
            from repro.dist.coordinator import _core_key

            keys = {
                _core_key(
                    PredictorSpec.from_dict(cell.spec_dict), cell.profile_payload
                )
                for cell in cells
            }
            # Both cells of the first grant come from the same core family
            # ("gehl..." sorts ahead of "tage-gsc...").
            assert len(keys) == 1 and "gehl" in next(iter(keys))

    def test_lease_grant_respects_coordinator_cap(self, traces):
        with Coordinator(batch=2) as coordinator:
            coordinator.submit(_sweep_specs(), traces)
            state, cells = coordinator._lease(owner=1, max_cells=64)
            assert state == "work"
            assert len(cells) == 2

    def test_plain_lease_still_single_cell(self, traces):
        with Coordinator() as coordinator:
            coordinator.submit(_sweep_specs(), traces)
            state, cells = coordinator._lease(owner=1)
            assert state == "work"
            assert len(cells) == 1

    def test_batched_grant_scales_lease_deadline(self, traces):
        # An N-cell grant uploads only after ~N cells of shared traversal,
        # so each cell's lease must get N * lease_timeout -- otherwise
        # every batched grant of cells near the single-cell budget would
        # systematically expire and be re-simulated elsewhere.
        import time as _time

        with Coordinator(lease_timeout=10.0) as coordinator:
            coordinator.submit(_sweep_specs(), traces)
            before = _time.monotonic()
            state, cells = coordinator._lease(owner=1, max_cells=5)
            assert state == "work" and len(cells) == 5
            for cell in cells:
                _, deadline = coordinator._leases[cell.cell_id]
                assert deadline - before >= 10.0 * len(cells) - 1.0
            # A plain lease keeps the per-cell timeout.
            state, single = coordinator._lease(owner=2)
            assert state == "work" and len(single) == 1
            _, deadline = coordinator._leases[single[0].cell_id]
            assert deadline - before < 10.0 * 2

    def test_batched_workers_bit_identical_to_serial(self, traces):
        import threading

        specs = _sweep_specs()
        serial = Experiment(specs, traces=traces, profile="small", store=False).run()
        with Coordinator() as coordinator:
            host, port = coordinator.address
            job = coordinator.submit(specs, traces)
            workers = [
                Worker(host, port, name=f"batch-worker-{i}", batch=3)
                for i in range(2)
            ]
            threads = [
                threading.Thread(target=worker.run, daemon=True)
                for worker in workers
            ]
            for thread in threads:
                thread.start()
            assert job.wait(60), "batched workers did not finish the sweep"
            runs = job.runs()
        for spec in specs:
            for ours, theirs in zip(
                runs[spec.label].results, serial.run_for(spec.label).results
            ):
                _assert_identical(ours, theirs)


class TestWorkerTraceCache:
    def _frame_bytes(self, frame):
        buffer = io.BytesIO()
        protocol.write_frame(buffer, frame)
        return buffer.getvalue()

    def test_decoded_traces_are_lru_bounded(self, traces):
        extra = generate_suite(
            "cbp4like", target_conditional_branches=LENGTH,
            benchmarks=["SPEC2K6-04"],
        )
        worker = Worker("127.0.0.1", 1, trace_cache=2)
        all_traces = list(traces) + extra
        for trace in all_traces:
            rfile = io.BytesIO(
                self._frame_bytes(
                    {
                        "type": "trace",
                        "fingerprint": trace.fingerprint(),
                        "data": protocol.encode_trace(trace),
                    }
                )
            )
            worker._trace_for(rfile, io.BytesIO(), {"trace": trace.fingerprint()})
        assert len(worker._traces) == 2
        # Least recently used (the first trace) was evicted ...
        assert all_traces[0].fingerprint() not in worker._traces
        # ... and the survivors are the two most recent.
        assert list(worker._traces) == [
            trace.fingerprint() for trace in all_traces[-2:]
        ]

    def test_cache_hit_refreshes_recency(self, traces):
        worker = Worker("127.0.0.1", 1, trace_cache=2)
        for trace in traces:
            worker._traces[trace.fingerprint()] = trace
        # Touch the older entry through the cache path (no fetch needed).
        worker._trace_for(None, None, {"trace": traces[0].fingerprint()})
        assert list(worker._traces)[-1] == traces[0].fingerprint()

    def test_trace_cache_validation(self):
        with pytest.raises(ValueError):
            Worker("127.0.0.1", 1, trace_cache=0)
        with pytest.raises(ValueError):
            Worker("127.0.0.1", 1, batch=0)


class TestBatchCLI:
    def test_sweep_no_batch_output_identical(self, tmp_path, capsys):
        from repro.cli import main

        args = [
            "sweep", "--base", "tage-gsc+oh", "--param", "oh_update_delay=0,63",
            "--benchmarks", "SPEC2K6-00", "--length", "120", "--profile", "small",
        ]
        default_json = tmp_path / "default.json"
        nobatch_json = tmp_path / "nobatch.json"
        assert main(args + ["--json", str(default_json)]) == 0
        assert main(args + ["--no-batch", "--json", str(nobatch_json)]) == 0
        capsys.readouterr()
        assert default_json.read_text() == nobatch_json.read_text()

    def test_batch_flags_are_mutually_exclusive(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--base", "tage-gsc", "--batch", "4", "--no-batch"]
            )

    def test_default_batch_constant_sane(self):
        assert DEFAULT_BATCH_CELLS >= 2
