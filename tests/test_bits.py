"""Unit and property-based tests for repro.common.bits."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.bits import (
    bit_at,
    fold_bits,
    hash_pc,
    is_power_of_two,
    log2_exact,
    mask,
    mix_hash,
    mix_hash1,
    mix_hash2,
    mix_hash3,
    mix_hash4,
    mix_pc_round,
    mix_tail2,
    rotate_left,
)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small_widths(self):
        assert mask(1) == 0b1
        assert mask(3) == 0b111
        assert mask(8) == 0xFF

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)

    @given(st.integers(min_value=0, max_value=256))
    def test_mask_is_all_ones(self, width):
        assert mask(width) == (1 << width) - 1


class TestRotateLeft:
    def test_identity_rotation(self):
        assert rotate_left(0b1011, 0, 4) == 0b1011

    def test_simple_rotation(self):
        assert rotate_left(0b0001, 1, 4) == 0b0010
        assert rotate_left(0b1000, 1, 4) == 0b0001

    def test_full_rotation_is_identity(self):
        assert rotate_left(0b1011, 4, 4) == 0b1011

    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            rotate_left(1, 1, 0)

    @given(
        st.integers(min_value=0, max_value=2**16 - 1),
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=1, max_value=16),
    )
    def test_rotation_preserves_popcount(self, value, amount, width):
        value &= mask(width)
        rotated = rotate_left(value, amount, width)
        assert bin(rotated).count("1") == bin(value).count("1")

    @given(
        st.integers(min_value=0, max_value=2**16 - 1),
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=1, max_value=16),
    )
    def test_rotation_is_invertible(self, value, amount, width):
        value &= mask(width)
        rotated = rotate_left(value, amount, width)
        assert rotate_left(rotated, width - (amount % width), width) == value


class TestFoldBits:
    def test_zero_output_width(self):
        assert fold_bits(0b1111, 4, 0) == 0

    def test_fold_shorter_than_output(self):
        assert fold_bits(0b101, 3, 8) == 0b101

    def test_fold_exact_xor(self):
        # 0b1101_0110 folded to 4 bits = 0b1101 ^ 0b0110
        assert fold_bits(0b11010110, 8, 4) == (0b1101 ^ 0b0110)

    def test_fold_masks_input(self):
        assert fold_bits(0b111111, 3, 3) == 0b111

    def test_negative_output_width_rejected(self):
        with pytest.raises(ValueError):
            fold_bits(1, 4, -1)

    @given(
        st.integers(min_value=0, max_value=2**64 - 1),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=16),
    )
    def test_fold_fits_in_output_width(self, value, input_width, output_width):
        assert 0 <= fold_bits(value, input_width, output_width) < (1 << output_width)

    @given(st.integers(min_value=1, max_value=16))
    def test_fold_of_zero_is_zero(self, output_width):
        assert fold_bits(0, 64, output_width) == 0


class TestHashPC:
    def test_fits_in_width(self):
        for pc in (0, 0x1234, 0xFFFF_FFFF, 123456789):
            assert 0 <= hash_pc(pc, 10) < 1024

    def test_distinct_for_nearby_pcs(self):
        values = {hash_pc(0x1000 + 64 * i, 10) for i in range(16)}
        assert len(values) > 8

    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            hash_pc(0x1000, 0)

    @given(st.integers(min_value=0, max_value=2**48), st.integers(min_value=1, max_value=20))
    def test_hash_range_property(self, pc, width):
        assert 0 <= hash_pc(pc, width) < (1 << width)


class TestMixHash:
    def test_fits_in_width(self):
        assert 0 <= mix_hash(0x1234, 7, width=9) < 512

    def test_sensitive_to_every_field(self):
        base = mix_hash(0x1234, 5, 1, width=12)
        assert mix_hash(0x1234, 6, 1, width=12) != base or mix_hash(0x1234, 5, 2, width=12) != base

    def test_small_count_values_spread(self):
        indices = {mix_hash(0x8000, count, width=9) for count in range(64)}
        assert len(indices) > 48

    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            mix_hash(1, 2, width=0)

    @given(
        st.lists(st.integers(min_value=0, max_value=2**32), min_size=1, max_size=5),
        st.integers(min_value=1, max_value=16),
    )
    def test_mix_hash_range_property(self, values, width):
        assert 0 <= mix_hash(*values, width=width) < (1 << width)

    @given(st.lists(st.integers(min_value=0, max_value=2**32), min_size=1, max_size=5))
    def test_mix_hash_deterministic(self, values):
        assert mix_hash(*values, width=11) == mix_hash(*values, width=11)


class TestMixHashFastVariants:
    """The unrolled hot-path variants must agree with the generic mix_hash."""

    FIELDS = st.integers(min_value=0, max_value=2**64 - 1)

    @given(a=FIELDS)
    def test_mix_hash1(self, a):
        assert mix_hash1(a) & mask(64) == mix_hash(a, width=64)

    @given(a=FIELDS, b=FIELDS)
    def test_mix_hash2(self, a, b):
        assert mix_hash2(a, b) & mask(64) == mix_hash(a, b, width=64)

    @given(a=FIELDS, b=FIELDS, c=FIELDS)
    def test_mix_hash3(self, a, b, c):
        assert mix_hash3(a, b, c) & mask(64) == mix_hash(a, b, c, width=64)

    @given(a=FIELDS, b=FIELDS, c=FIELDS, d=FIELDS)
    def test_mix_hash4(self, a, b, c, d):
        assert mix_hash4(a, b, c, d) & mask(64) == mix_hash(a, b, c, d, width=64)

    @given(a=FIELDS, b=FIELDS, c=FIELDS)
    def test_shared_pc_round(self, a, b, c):
        assert mix_tail2(mix_pc_round(a), b, c) == mix_hash3(a, b, c)

    @given(a=FIELDS, b=FIELDS, c=FIELDS, width=st.integers(min_value=1, max_value=20))
    def test_narrow_widths_match(self, a, b, c, width):
        assert mix_hash3(a, b, c) & mask(width) == mix_hash(a, b, c, width=width)


class TestBitAt:
    def test_extracts_bits(self):
        assert bit_at(0b1010, 0) == 0
        assert bit_at(0b1010, 1) == 1
        assert bit_at(0b1010, 3) == 1

    def test_rejects_negative_position(self):
        with pytest.raises(ValueError):
            bit_at(1, -1)


class TestPowersOfTwo:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(512) == 9

    def test_log2_exact_rejects_non_powers(self):
        with pytest.raises(ValueError):
            log2_exact(12)

    @given(st.integers(min_value=0, max_value=30))
    def test_log2_roundtrip(self, exponent):
        assert log2_exact(1 << exponent) == exponent
