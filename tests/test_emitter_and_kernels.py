"""Tests for the workload emitter and the synthetic kernels.

The kernel tests verify the *correlation structure* each kernel promises
(module docstring of :mod:`repro.workloads.kernels`): those invariants are
what the predictors under test are supposed to exploit, so they must hold
exactly.
"""

from __future__ import annotations

from collections import defaultdict

import pytest

from repro.trace.branch import BranchKind
from repro.workloads.emitter import KernelEmitter
from repro.workloads.kernels import (
    AlternatingOuterKernel,
    BiasedMixKernel,
    GlobalCorrelatedKernel,
    LocalPeriodicKernel,
    LoopExitKernel,
    NoiseKernel,
    SameIterationKernel,
    WormholeDiagonalKernel,
    build_kernel,
    KERNEL_NAMES,
)


class TestKernelEmitter:
    def test_stable_pcs_per_label(self):
        emitter = KernelEmitter()
        emitter.branch("a", True)
        emitter.branch("b", False)
        emitter.branch("a", False)
        records = emitter.drain()
        assert records[0].pc == records[2].pc
        assert records[0].pc != records[1].pc

    def test_forward_branch_targets(self):
        emitter = KernelEmitter()
        emitter.branch("fwd", True)
        record = emitter.drain()[0]
        assert record.target > record.pc
        assert not record.is_backward

    def test_loop_branch_is_backward(self):
        emitter = KernelEmitter()
        emitter.loop_branch("loop", True)
        record = emitter.drain()[0]
        assert record.is_backward
        assert record.is_conditional

    def test_call_and_jump_kinds(self):
        emitter = KernelEmitter()
        emitter.call("c")
        emitter.jump("j")
        records = emitter.drain()
        assert records[0].kind is BranchKind.CALL
        assert records[1].kind is BranchKind.UNCONDITIONAL
        assert all(record.taken for record in records)

    def test_drain_clears(self):
        emitter = KernelEmitter()
        emitter.branch("a", True)
        assert len(emitter.drain()) == 1
        assert len(emitter.drain()) == 0

    def test_instruction_gap_propagates(self):
        emitter = KernelEmitter(instruction_gap=7)
        emitter.branch("a", True)
        assert emitter.drain()[0].instruction_gap == 7

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KernelEmitter(base_pc=-1)
        with pytest.raises(ValueError):
            KernelEmitter(instruction_gap=-1)


def _target_outcomes_by_iteration(records, target_pc, backward_pcs):
    """Group the target branch's outcomes by (outer, inner) position.

    The inner iteration index is recovered by counting executions of the
    inner loop back-edge; the outer index by counting its not-taken exits.
    """
    outcomes = defaultdict(dict)
    inner = 0
    outer = 0
    for record in records:
        if record.pc == target_pc:
            outcomes[outer][inner] = record.taken
        elif record.pc in backward_pcs:
            if record.taken:
                inner += 1
            else:
                inner = 0
                outer += 1
    return outcomes


class TestSameIterationKernel:
    def _emit(self, variable_trip):
        kernel = SameIterationKernel(
            seed=3, max_trip=12, outer_iterations=6, variable_trip=variable_trip,
            noise_branches=1,
        )
        emitter = KernelEmitter()
        kernel.emit_round(emitter)
        kernel.emit_round(emitter)
        return kernel, emitter.drain(), emitter

    def test_same_iteration_invariant(self):
        """Out[N][M] must equal pattern[M] for every outer iteration N."""
        kernel, records, emitter = self._emit(variable_trip=True)
        target_pc = emitter.pc_for(kernel._label("target"))
        inner_back = emitter.pc_for(kernel._label("inner_back"))
        inner = 0
        for record in records:
            if record.pc == target_pc:
                assert record.taken == kernel.pattern[inner]
            elif record.pc == inner_back:
                inner = inner + 1 if record.taken else 0

    def test_variable_trip_counts_vary(self):
        kernel, records, emitter = self._emit(variable_trip=True)
        inner_back = emitter.pc_for(kernel._label("inner_back"))
        trips = []
        count = 0
        for record in records:
            if record.pc == inner_back:
                if record.taken:
                    count += 1
                else:
                    trips.append(count + 1)
                    count = 0
        assert len(set(trips)) > 1

    def test_constant_trip_counts(self):
        kernel, records, emitter = self._emit(variable_trip=False)
        inner_back = emitter.pc_for(kernel._label("inner_back"))
        trips = []
        count = 0
        for record in records:
            if record.pc == inner_back:
                if record.taken:
                    count += 1
                else:
                    trips.append(count + 1)
                    count = 0
        assert set(trips) == {kernel.max_trip}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SameIterationKernel(seed=1, max_trip=2)
        with pytest.raises(ValueError):
            SameIterationKernel(seed=1, outer_iterations=0)


class TestWormholeDiagonalKernel:
    def test_diagonal_invariant(self):
        """Out[N][M] must equal Out[N-1][M-1] for M >= 1."""
        kernel = WormholeDiagonalKernel(seed=5, trip=10, outer_iterations=8, noise_branches=1)
        emitter = KernelEmitter()
        kernel.emit_round(emitter)
        records = emitter.drain()
        target_pc = emitter.pc_for(kernel._label("target"))
        inner_back = emitter.pc_for(kernel._label("inner_back"))
        outcomes = _target_outcomes_by_iteration(records, target_pc, {inner_back})
        for outer in range(1, 8):
            for inner in range(1, 10):
                assert outcomes[outer][inner] == outcomes[outer - 1][inner - 1]

    def test_constant_trip(self):
        kernel = WormholeDiagonalKernel(seed=5, trip=10, outer_iterations=4)
        emitter = KernelEmitter()
        kernel.emit_round(emitter)
        target_pc = emitter.pc_for(kernel._label("target"))
        count = sum(1 for record in emitter.records if record.pc == target_pc)
        assert count == 10 * 4

    def test_invalid_trip(self):
        with pytest.raises(ValueError):
            WormholeDiagonalKernel(seed=1, trip=2)


class TestAlternatingOuterKernel:
    def test_alternation_invariant(self):
        """Out[N][M] must equal NOT Out[N-1][M]."""
        kernel = AlternatingOuterKernel(seed=9, trip=8, outer_iterations=6, noise_branches=1)
        emitter = KernelEmitter()
        kernel.emit_round(emitter)
        records = emitter.drain()
        target_pc = emitter.pc_for(kernel._label("target"))
        inner_back = emitter.pc_for(kernel._label("inner_back"))
        outcomes = _target_outcomes_by_iteration(records, target_pc, {inner_back})
        for outer in range(1, 6):
            for inner in range(8):
                assert outcomes[outer][inner] == (not outcomes[outer - 1][inner])


class TestLocalPeriodicKernel:
    def test_target_outcomes_are_periodic(self):
        kernel = LocalPeriodicKernel(
            seed=21, branch_count=2, period=5, iterations_per_round=20, noise_branches=1
        )
        emitter = KernelEmitter()
        kernel.emit_round(emitter)
        records = emitter.drain()
        for branch_index in range(2):
            target_pc = emitter.pc_for(kernel._label(f"target{branch_index}"))
            outcomes = [record.taken for record in records if record.pc == target_pc]
            for position, outcome in enumerate(outcomes):
                assert outcome == outcomes[position % 5]

    def test_patterns_are_not_degenerate(self):
        kernel = LocalPeriodicKernel(seed=3, branch_count=8, period=4)
        for pattern in kernel.patterns:
            assert any(pattern) and not all(pattern)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LocalPeriodicKernel(seed=1, branch_count=0)
        with pytest.raises(ValueError):
            LocalPeriodicKernel(seed=1, period=1)


class TestLoopExitKernel:
    def test_loop_trip_count_is_constant(self):
        kernel = LoopExitKernel(seed=2, trip=12, executions_per_round=5, noise_branches=1)
        emitter = KernelEmitter()
        kernel.emit_round(emitter)
        back_pc = emitter.pc_for(kernel._label("back"))
        trips = []
        count = 0
        for record in emitter.records:
            if record.pc == back_pc:
                if record.taken:
                    count += 1
                else:
                    trips.append(count + 1)
                    count = 0
        assert trips == [12] * 5


class TestStatisticalKernels:
    def test_global_correlated_sinks_are_deterministic(self):
        kernel = GlobalCorrelatedKernel(seed=4, depth=2, sink_count=3, groups_per_round=30)
        emitter = KernelEmitter()
        kernel.emit_round(emitter)
        records = emitter.drain()
        source_pcs = [emitter.pc_for(kernel._label(f"source{i}")) for i in range(2)]
        sink0_pc = emitter.pc_for(kernel._label("sink0"))
        sources = []
        for record in records:
            if record.pc in source_pcs:
                sources.append(record.taken)
            elif record.pc == sink0_pc:
                assert record.taken == (sources[-2] ^ sources[-1])

    def test_biased_mix_respects_bias_floor(self):
        kernel = BiasedMixKernel(seed=6, branch_count=10, executions_per_round=200, minimum_bias=0.9)
        emitter = KernelEmitter()
        kernel.emit_round(emitter)
        by_pc = defaultdict(list)
        for record in emitter.records:
            by_pc[record.pc].append(record.taken)
        for outcomes in by_pc.values():
            rate = sum(outcomes) / len(outcomes)
            assert rate >= 0.8 or rate <= 0.2

    def test_noise_kernel_branch_count(self):
        kernel = NoiseKernel(seed=8, branch_count=4, executions_per_round=10)
        emitter = KernelEmitter()
        kernel.emit_round(emitter)
        assert len({record.pc for record in emitter.records}) == 4
        assert len(emitter.records) == 40

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GlobalCorrelatedKernel(seed=1, depth=0)
        with pytest.raises(ValueError):
            NoiseKernel(seed=1, taken_probability=1.5)
        with pytest.raises(ValueError):
            BiasedMixKernel(seed=1, minimum_bias=0.3)


class TestKernelRegistry:
    def test_build_every_registered_kernel(self):
        for name in KERNEL_NAMES:
            kernel = build_kernel(name, seed=1)
            emitter = KernelEmitter()
            kernel.emit_round(emitter)
            assert len(emitter.records) > 0

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            build_kernel("does-not-exist", seed=1)

    def test_determinism_per_seed(self):
        for name in KERNEL_NAMES:
            first = build_kernel(name, seed=42)
            second = build_kernel(name, seed=42)
            emitter_a, emitter_b = KernelEmitter(), KernelEmitter()
            first.emit_round(emitter_a)
            second.emit_round(emitter_b)
            assert emitter_a.records == emitter_b.records
