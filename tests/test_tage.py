"""Tests for the TAGE predictor (engine and standalone wrapper)."""

from __future__ import annotations

import random

import pytest

from repro.core.component import SharedState
from repro.predictors.simple import BimodalPredictor
from repro.predictors.tage import TAGEConfig, TAGEEngine, TAGEPredictor
from repro.sim.engine import simulate
from repro.trace.branch import conditional_branch
from repro.trace.trace import Trace


SMALL_CONFIG = TAGEConfig(
    num_tables=5,
    table_entries=256,
    base_entries=512,
    max_history=60,
    useful_reset_period=2048,
)


def _drive(predictor, records):
    mispredictions = 0
    for record in records:
        prediction = predictor.predict(record)
        predictor.update(record, prediction)
        mispredictions += prediction != record.taken
    return mispredictions


class TestTAGEConfig:
    def test_history_lengths_are_geometric(self):
        lengths = TAGEConfig(num_tables=6, min_history=4, max_history=128).history_lengths()
        assert lengths[0] == 4
        assert lengths[-1] >= 128
        assert all(b > a for a, b in zip(lengths, lengths[1:]))

    def test_default_config_is_consistent(self):
        config = TAGEConfig()
        assert len(config.history_lengths()) == config.num_tables


class TestTAGEEngine:
    def test_rejects_history_capacity_too_small(self):
        state = SharedState(history_capacity=16)
        with pytest.raises(ValueError):
            TAGEEngine(state, TAGEConfig(max_history=300))

    def test_prediction_context_fields(self):
        state = SharedState(history_capacity=512)
        engine = TAGEEngine(state, SMALL_CONFIG)
        prediction = engine.predict(0x1234)
        assert len(prediction.indices) == SMALL_CONFIG.num_tables
        assert len(prediction.tags) == SMALL_CONFIG.num_tables
        assert prediction.provider == -1  # nothing allocated yet

    def test_allocation_after_misprediction(self):
        state = SharedState(history_capacity=512)
        engine = TAGEEngine(state, SMALL_CONFIG)
        record = conditional_branch(0x1234, 0x1300, taken=False)
        allocated_before = sum(
            1 for table in engine.tables for tag in table.tag if tag
        )
        for _ in range(8):
            prediction = engine.predict(record.pc)
            engine.train(record, prediction)
            state.update_conditional(record)
        allocated_after = sum(
            1 for table in engine.tables for index in range(table.entries)
            if table.tag[index] or table.ctr[index]
        )
        assert allocated_after >= allocated_before

    def test_storage_bits_formula(self):
        state = SharedState(history_capacity=512)
        engine = TAGEEngine(state, SMALL_CONFIG)
        cfg = SMALL_CONFIG
        expected = (
            cfg.num_tables * cfg.table_entries * (cfg.counter_bits + cfg.tag_bits + cfg.useful_bits)
            + cfg.base_entries * cfg.base_counter_bits
            + cfg.use_alt_counter_bits
        )
        assert engine.storage_bits() == expected


class TestTAGEPredictor:
    def test_learns_biased_branches(self):
        predictor = TAGEPredictor(SMALL_CONFIG)
        records = [conditional_branch(0x40, 0x80, taken=True)] * 200
        assert _drive(predictor, records) <= 5

    def test_learns_alternation(self, alternating_records):
        predictor = TAGEPredictor(SMALL_CONFIG)
        assert _drive(predictor, alternating_records * 4) <= len(alternating_records)

    def test_learns_global_history_correlation(self):
        """A branch equal to the XOR of the two previous branches is TAGE food."""
        rng = random.Random(11)
        predictor = TAGEPredictor(SMALL_CONFIG)
        records = []
        for _ in range(1500):
            a = rng.random() < 0.5
            b = rng.random() < 0.5
            records.append(conditional_branch(0x100, 0x140, taken=a))
            records.append(conditional_branch(0x200, 0x240, taken=b))
            records.append(conditional_branch(0x300, 0x340, taken=a ^ b))
        mispredictions = _drive(predictor, records)
        total = len(records)
        # The two source branches are random (about 50 % each), the sink must
        # become nearly perfectly predicted, so the overall rate is ~1/3.
        assert mispredictions / total < 0.42

    def test_beats_bimodal_on_history_correlated_code(self, local_trace):
        tage = simulate(TAGEPredictor(SMALL_CONFIG), local_trace)
        bimodal = simulate(BimodalPredictor(entries=4096), local_trace)
        assert tage.mpki < bimodal.mpki

    def test_update_requires_predict(self):
        predictor = TAGEPredictor(SMALL_CONFIG)
        with pytest.raises(RuntimeError):
            predictor.update(conditional_branch(0x40, 0x80, True), True)

    def test_observe_unconditional_advances_path_only(self):
        predictor = TAGEPredictor(SMALL_CONFIG)
        from repro.trace.branch import BranchKind, BranchRecord

        predictor.observe_unconditional(
            BranchRecord(pc=0x500, target=0x600, taken=True, kind=BranchKind.CALL)
        )
        assert predictor.state.global_history.value(4) == 0

    def test_storage_positive_and_reported(self):
        predictor = TAGEPredictor(SMALL_CONFIG)
        assert predictor.storage_bits() > 0
        assert predictor.storage_kilobits() == predictor.storage_bits() / 1024.0

    def test_deterministic_across_instances(self, easy_trace):
        first = simulate(TAGEPredictor(SMALL_CONFIG), easy_trace)
        second = simulate(TAGEPredictor(SMALL_CONFIG), easy_trace)
        assert first.mispredictions == second.mispredictions
