"""Tests for the adder tree and its standard components."""

from __future__ import annotations

import pytest

from repro.common.history import LocalHistoryTable
from repro.core.component import SharedState
from repro.core.imli_sic import IMLISameIterationComponent
from repro.predictors.adder import AdderTree
from repro.predictors.components import (
    BiasComponent,
    GlobalHistoryComponent,
    IMLICountHashedGlobalComponent,
    LocalHistoryComponent,
    geometric_history_lengths,
)
from repro.trace.branch import conditional_branch


class TestGeometricHistoryLengths:
    def test_endpoints(self):
        lengths = geometric_history_lengths(8, 4, 200)
        assert lengths[0] == 4
        assert lengths[-1] >= 200
        assert len(lengths) == 8

    def test_strictly_increasing(self):
        lengths = geometric_history_lengths(10, 3, 300)
        assert all(b > a for a, b in zip(lengths, lengths[1:]))

    def test_single_length(self):
        assert geometric_history_lengths(1, 5, 100) == [5]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            geometric_history_lengths(0, 4, 100)
        with pytest.raises(ValueError):
            geometric_history_lengths(4, 10, 5)


class TestBiasComponent:
    def test_selects_one_counter_without_tage(self):
        state = SharedState()
        component = BiasComponent(entries=64, use_tage_prediction=False)
        assert len(component.select(0x123, state)) == 1

    def test_selects_two_counters_with_tage(self):
        state = SharedState()
        state.tage_prediction = True
        component = BiasComponent(entries=64, use_tage_prediction=True)
        assert len(component.select(0x123, state)) == 2

    def test_tage_prediction_changes_second_index(self):
        state = SharedState()
        component = BiasComponent(entries=256, use_tage_prediction=True)
        state.tage_prediction = True
        taken_index = component.select(0x123, state)[1][1]
        state.tage_prediction = False
        not_taken_index = component.select(0x123, state)[1][1]
        assert taken_index != not_taken_index

    def test_storage(self):
        assert BiasComponent(entries=128, counter_bits=6).storage_bits() == 768
        assert BiasComponent(entries=128, counter_bits=6, use_tage_prediction=True).storage_bits() == 1536

    def test_default_training_moves_counters(self):
        state = SharedState()
        component = BiasComponent(entries=64)
        selections = component.select(0x44, state)
        component.train(0x44, True, selections, state)
        table, index = selections[0]
        assert table.values[index] == 1


class TestGlobalHistoryComponent:
    def test_one_counter_per_history_length(self):
        state = SharedState()
        component = GlobalHistoryComponent(state, history_lengths=[0, 5, 11], entries=128)
        assert len(component.select(0x99, state)) == 3

    def test_index_changes_with_history(self):
        """Different global histories must (in general) select different entries."""
        state = SharedState()
        component = GlobalHistoryComponent(state, history_lengths=[8], entries=512)
        indices = {component.select(0x99, state)[0][1]}
        for index in range(24):
            state.update_conditional(
                conditional_branch(0x10 + index, 0x20, taken=bool(index % 3))
            )
            indices.add(component.select(0x99, state)[0][1])
        assert len(indices) > 8

    def test_storage(self):
        state = SharedState()
        component = GlobalHistoryComponent(state, history_lengths=[4, 8], entries=256, counter_bits=6)
        assert component.storage_bits() == 2 * 256 * 6

    def test_requires_history_lengths(self):
        with pytest.raises(ValueError):
            GlobalHistoryComponent(SharedState(), history_lengths=[])


class TestIMLICountHashedGlobalComponent:
    def test_index_changes_with_imli_count(self):
        state = SharedState()
        component = IMLICountHashedGlobalComponent(state, history_lengths=[8], entries=512)
        index_zero = component.select(0x99, state)[0][1]
        state.imli.count = 9
        index_nine = component.select(0x99, state)[0][1]
        assert index_zero != index_nine


class TestLocalHistoryComponent:
    def test_requires_local_history_table(self):
        state = SharedState()  # no local history table
        component = LocalHistoryComponent(history_lengths=[8], entries=64)
        with pytest.raises(RuntimeError):
            component.select(0x99, state)

    def test_index_changes_with_local_history(self):
        table = LocalHistoryTable(64, 16)
        state = SharedState(local_history_table=table)
        component = LocalHistoryComponent(history_lengths=[8], entries=512)
        before = component.select(0x99, state)[0][1]
        for _ in range(5):
            state.update_conditional(conditional_branch(0x99, 0x120, taken=True))
        after = component.select(0x99, state)[0][1]
        assert before != after

    def test_storage(self):
        component = LocalHistoryComponent(history_lengths=[6, 11, 16], entries=128, counter_bits=6)
        assert component.storage_bits() == 3 * 128 * 6


class TestAdderTree:
    def _make(self, extra=()):
        state = SharedState()
        components = [BiasComponent(entries=64), *extra]
        return AdderTree(components, initial_threshold=4), state

    def test_requires_components(self):
        with pytest.raises(ValueError):
            AdderTree([])

    def test_sum_uses_centred_counters(self):
        adder, state = self._make()
        total, selections = adder.compute(0x77, state)
        # A single zero counter contributes 2*0 + 1.
        assert total == 1
        assert len(selections) == 1

    def test_training_moves_counters_toward_outcome(self):
        adder, state = self._make()
        record = conditional_branch(0x77, 0x90, taken=False)
        total, selections = adder.compute(0x77, state)
        adder.train(record, total, selections, state)
        table, index = selections[0][0]
        assert table.values[index] == -1

    def test_training_skipped_when_confident_and_correct(self):
        adder, state = self._make()
        record = conditional_branch(0x77, 0x90, taken=True)
        # Saturate the counter well above the threshold.
        for _ in range(30):
            total, selections = adder.compute(0x77, state)
            adder.train(record, total, selections, state)
        table, index = selections[0][0]
        value_before = table.values[index]
        total, selections = adder.compute(0x77, state)
        assert abs(total) > adder.threshold
        adder.train(record, total, selections, state)
        assert table.values[index] == value_before

    def test_force_training(self):
        adder, state = self._make()
        record = conditional_branch(0x77, 0x90, taken=True)
        for _ in range(30):
            total, selections = adder.compute(0x77, state)
            adder.train(record, total, selections, state)
        total, selections = adder.compute(0x77, state)
        value_before = selections[0][0][0].values[selections[0][0][1]]
        adder.train(record, total, selections, state, force=True)
        # Forced training still saturates upward (no change at the rail) but
        # must not decrease the counter.
        assert selections[0][0][0].values[selections[0][0][1]] >= value_before

    def test_rejects_old_style_on_outcome_override(self):
        class LegacyComponent(BiasComponent):
            def on_outcome(self, record, state):  # pragma: no cover - hook
                pass

        adder, state = self._make(extra=[LegacyComponent(entries=64)])
        record = conditional_branch(0x77, 0x90, taken=True)
        total, selections = adder.compute(0x77, state)
        with pytest.raises(TypeError, match="on_outcome_fields"):
            adder.train(record, total, selections, state)

    def test_components_appended_after_first_train_get_outcome_hook(self):
        adder, state = self._make()
        record = conditional_branch(0x77, 0x90, taken=True)
        total, selections = adder.compute(0x77, state)
        adder.train(record, total, selections, state)

        calls = []

        class Observer(BiasComponent):
            def on_outcome_fields(self, pc, target, taken, state):
                calls.append(pc)

        adder.components.append(Observer(entries=64))
        total, selections = adder.compute(0x77, state)
        adder.train(record, total, selections, state)
        assert calls == [0x77]

    def test_threshold_adapts_upward_under_mispredictions(self):
        adder, state = self._make()
        initial_threshold = adder.threshold
        import random

        rng = random.Random(3)
        for _ in range(4000):
            record = conditional_branch(0x77, 0x90, taken=rng.random() < 0.5)
            total, selections = adder.compute(0x77, state)
            adder.train(record, total, selections, state)
        assert adder.threshold >= initial_threshold

    def test_learns_imli_correlation_through_extra_component(self):
        """An IMLI-SIC component plugged into an adder tree learns the pattern."""
        sic = IMLISameIterationComponent(entries=128)
        adder, state = self._make(extra=[sic])
        pattern = [bool(i % 3 == 0) for i in range(12)]
        correct = 0
        total_branches = 0
        for outer in range(20):
            for inner in range(12):
                record = conditional_branch(0x5000, 0x5040, taken=pattern[inner])
                total, selections = adder.compute(0x5000, state)
                if outer >= 10:
                    total_branches += 1
                    correct += (total >= 0) == pattern[inner]
                adder.train(record, total, selections, state)
                state.update_conditional(record)
                back = conditional_branch(0x6000, 0x5000, taken=inner < 11)
                state.update_conditional(back)
        assert correct / total_branches > 0.9

    def test_storage_and_breakdown(self):
        adder, _ = self._make(extra=[IMLISameIterationComponent(entries=128)])
        breakdown = adder.component_storage_breakdown()
        assert [name for name, _ in breakdown] == ["bias", "imli-sic"]
        assert adder.storage_bits() >= sum(bits for _, bits in breakdown)

    def test_speculative_state_bits_sum(self):
        from repro.core.imli_oh import IMLIOuterHistoryComponent

        adder, _ = self._make(extra=[IMLIOuterHistoryComponent()])
        assert adder.speculative_state_bits() == 16
