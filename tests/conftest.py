"""Shared fixtures for the test suite.

The fixtures build small traces (a few thousand branches at most) so that
even the integration tests that exercise full TAGE-GSC / GEHL composites
run in seconds.  All traces are deterministic.
"""

from __future__ import annotations

import pytest

from repro.trace.branch import BranchKind, BranchRecord, conditional_branch
from repro.trace.trace import Trace
from repro.workloads.emitter import KernelEmitter
from repro.workloads.kernels import (
    BiasedMixKernel,
    LocalPeriodicKernel,
    SameIterationKernel,
    WormholeDiagonalKernel,
)
from repro.workloads.suites import generate_benchmark, get_benchmark


def _trace_from_kernel(kernel, rounds: int, name: str) -> Trace:
    emitter = KernelEmitter(base_pc=0x4000, instruction_gap=9)
    for _ in range(rounds):
        kernel.emit_round(emitter)
    return Trace(name=name, records=emitter.drain())


@pytest.fixture(scope="session")
def sic_trace() -> Trace:
    """Nested loop with same-iteration correlation (IMLI-SIC target)."""
    kernel = SameIterationKernel(
        seed=7, max_trip=24, outer_iterations=10, variable_trip=True, noise_branches=1
    )
    return _trace_from_kernel(kernel, rounds=4, name="sic-kernel")


@pytest.fixture(scope="session")
def wormhole_trace() -> Trace:
    """Nested loop with Out[N][M] == Out[N-1][M-1] (wormhole/IMLI-OH target)."""
    kernel = WormholeDiagonalKernel(seed=11, trip=20, outer_iterations=30, noise_branches=1)
    return _trace_from_kernel(kernel, rounds=2, name="wormhole-kernel")


@pytest.fixture(scope="session")
def local_trace() -> Trace:
    """Locally periodic branches behind noise (local-history target)."""
    kernel = LocalPeriodicKernel(seed=13, branch_count=3, period=5, iterations_per_round=40)
    return _trace_from_kernel(kernel, rounds=4, name="local-kernel")


@pytest.fixture(scope="session")
def easy_trace() -> Trace:
    """Strongly biased branches (easy for every predictor)."""
    kernel = BiasedMixKernel(seed=17, branch_count=16, executions_per_round=40, minimum_bias=0.95)
    return _trace_from_kernel(kernel, rounds=3, name="easy-kernel")


@pytest.fixture(scope="session")
def spec2k6_04_trace() -> Trace:
    """A small rendering of the SPEC2K6-04 benchmark (IMLI-SIC showcase)."""
    return generate_benchmark(
        get_benchmark("cbp4like", "SPEC2K6-04"), target_conditional_branches=2500
    )


@pytest.fixture(scope="session")
def spec2k6_12_trace() -> Trace:
    """A small rendering of the SPEC2K6-12 benchmark (wormhole showcase)."""
    return generate_benchmark(
        get_benchmark("cbp4like", "SPEC2K6-12"), target_conditional_branches=2500
    )


@pytest.fixture
def alternating_records() -> list:
    """A hand-written T/N/T/N... conditional branch sequence at one PC."""
    return [conditional_branch(pc=0x100, target=0x140, taken=bool(i % 2)) for i in range(64)]


@pytest.fixture
def simple_loop_records() -> list:
    """A backward loop branch executing 3 loops of 5 iterations each."""
    records = []
    for _ in range(3):
        for iteration in range(5):
            records.append(
                BranchRecord(
                    pc=0x200,
                    target=0x180,
                    taken=iteration < 4,
                    kind=BranchKind.CONDITIONAL,
                )
            )
    return records
