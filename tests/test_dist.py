"""Tests for the distributed sweep service (:mod:`repro.dist`).

The heavy guarantees are exercised fully in-process: a coordinator thread
plus worker threads on localhost TCP, so the tests cover the real
protocol path (sockets, frames, leases) without spawning processes.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.api.experiment import Experiment, ResultSet
from repro.api.specs import PredictorSpec
from repro.dist import (
    Coordinator,
    DistBackend,
    JobFailed,
    Worker,
    submit_sweep,
)
from repro.dist import protocol
from repro.dist.protocol import ProtocolError
from repro.sim.engine import simulate
from repro.store import ResultStore, result_to_dict
from repro.workloads.suites import generate_suite

BENCHMARKS = ["SPEC2K6-00", "SPEC2K6-04"]
LENGTH = 300


@pytest.fixture(scope="module")
def traces():
    return generate_suite(
        "cbp4like", target_conditional_branches=LENGTH, benchmarks=BENCHMARKS
    )


@pytest.fixture(scope="module")
def specs():
    return [
        PredictorSpec.from_named("tage-gsc", profile="small"),
        PredictorSpec.from_named("tage-gsc", profile="small", imli_sic=True),
    ]


@pytest.fixture(scope="module")
def serial_results(specs, traces):
    return Experiment(specs, traces=traces, profile="small", store=False).run()


def _start_workers(address, count, **kwargs):
    """``count`` workers in background threads; returns (workers, threads)."""
    host, port = address
    # A short reconnect window keeps worker threads joinable within the
    # test timeout when a coordinator goes away abruptly.
    kwargs.setdefault("reconnect", 0.75)
    workers = [
        Worker(host, port, name=f"test-worker-{i}", **kwargs) for i in range(count)
    ]
    threads = [
        threading.Thread(target=worker.run, daemon=True) for worker in workers
    ]
    for thread in threads:
        thread.start()
    return workers, threads


def _join_workers(coordinator, threads):
    coordinator.shutdown()
    for thread in threads:
        thread.join(timeout=10)
    assert not any(thread.is_alive() for thread in threads), "worker thread hung"


class _RawClient:
    """Hand-rolled protocol client for fault and fuzz tests."""

    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=10)
        self.rfile = self.sock.makefile("rb")
        self.wfile = self.sock.makefile("wb")

    def send(self, frame):
        protocol.write_frame(self.wfile, frame)

    def send_raw(self, data: bytes):
        self.wfile.write(data)
        self.wfile.flush()

    def recv(self):
        return protocol.read_frame(self.rfile)

    def hello(self):
        self.send(
            {"type": "hello", "role": "worker", "protocol": protocol.PROTOCOL_VERSION,
             "worker": "raw"}
        )
        reply = self.recv()
        assert reply["type"] == "welcome"
        return reply

    def lease(self):
        self.send({"type": "lease"})
        return self.recv()

    def close(self):
        for stream in (self.wfile, self.rfile):
            try:
                stream.close()
            except OSError:
                pass
        try:
            self.sock.close()
        except OSError:
            pass


class TestProtocol:
    def test_trace_codec_round_trip(self, traces):
        for trace in traces:
            restored = protocol.decode_trace(protocol.encode_trace(trace))
            assert restored.fingerprint() == trace.fingerprint()
            assert restored.name == trace.name

    def test_profile_codec_round_trip(self):
        from repro.api.registry import default_registry
        from repro.store import profile_content

        profile = default_registry().resolve_profile("small")
        payload = json.loads(json.dumps(protocol.profile_to_payload(profile)))
        restored = protocol.profile_from_payload(payload)
        assert profile_content(restored) == profile_content(profile)

    def test_decode_trace_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            protocol.decode_trace("not base64!")
        with pytest.raises(ProtocolError):
            protocol.decode_trace("aGVsbG8=")  # valid base64, not a trace

    def test_profile_payload_rejects_junk(self):
        with pytest.raises(ProtocolError):
            protocol.profile_from_payload({"tage": {}, "nonsense": 1})

    def test_frame_round_trip_and_errors(self, tmp_path):
        import io

        buffer = io.BytesIO()
        protocol.write_frame(buffer, {"type": "lease", "n": 1})
        buffer.seek(0)
        assert protocol.read_frame(buffer) == {"type": "lease", "n": 1}
        assert protocol.read_frame(buffer) is None  # EOF
        for junk in (b"not json\n", b'[1, 2]\n', b'{"no-type": 1}\n', b'{"x": 1'):
            with pytest.raises(ProtocolError):
                protocol.read_frame(io.BytesIO(junk))


class TestEndToEnd:
    def test_two_workers_bit_identical_to_serial(self, specs, traces, serial_results):
        coordinator = Coordinator()
        address = coordinator.start()
        job = coordinator.submit(specs, traces)
        workers, threads = _start_workers(address, 2)
        assert job.wait(60), "distributed sweep did not finish"
        runs = job.runs()
        _join_workers(coordinator, threads)

        dist_results = ResultSet(
            specs=list(specs), runs=runs,
            trace_names=[trace.name for trace in traces],
        )
        assert dist_results.to_json() == serial_results.to_json()
        assert dist_results.to_csv() == serial_results.to_csv()
        # Both workers did real work and every cell ran exactly once.
        assert job.done == job.total == len(specs) * len(traces)
        assert sum(worker.completed for worker in workers) == job.total

    def test_experiment_dist_backend_matches_serial(
        self, specs, traces, serial_results
    ):
        coordinator = Coordinator()
        address = coordinator.start()
        workers, threads = _start_workers(address, 2)
        experiment = Experiment(
            specs, traces=traces, profile="small", store=False,
            backend=DistBackend(address),
        )
        dist_results = experiment.run()
        _join_workers(coordinator, threads)
        assert dist_results.to_json() == serial_results.to_json()

    def test_submit_sweep_client(self, specs, traces, serial_results):
        coordinator = Coordinator()
        address = coordinator.start()
        workers, threads = _start_workers(address, 2)
        seen = []
        results = submit_sweep(address, specs, traces, progress=lambda d, t: seen.append((d, t)))
        _join_workers(coordinator, threads)
        for index, trace in enumerate(traces):
            for spec in specs:
                assert results[(spec.label, index)].mpki == serial_results.mpki(
                    spec.label, trace.name
                )
        assert seen and seen[-1][0] == seen[-1][1] == len(specs) * len(traces)

    def test_unbuildable_spec_fails_the_job(self, traces):
        from repro.api.registry import Registry

        # A builder-based spec from a scoped registry is admissible on the
        # coordinator but cannot build on a worker (workers only know the
        # default registry) -- the worker reports it and the job fails
        # fast instead of looping the cell forever.
        scoped = Registry.with_defaults()
        scoped.register_configuration(
            "test-doomed", lambda profile, **overrides: None
        )
        coordinator = Coordinator()
        address = coordinator.start()
        bad = PredictorSpec.from_named("test-doomed", profile="small")
        job = coordinator.submit([bad], traces, registry=scoped)
        workers, threads = _start_workers(address, 1)
        assert job.wait(60)
        assert job.error is not None and "test-doomed" in job.error
        with pytest.raises(JobFailed):
            job.runs()
        _join_workers(coordinator, threads)


class TestFaultTolerance:
    def test_killed_worker_leases_are_requeued(self, specs, traces, serial_results):
        coordinator = Coordinator()
        address = coordinator.start()
        job = coordinator.submit(specs, traces)

        # A worker leases one cell and dies without ever reporting back.
        casualty = _RawClient(address)
        casualty.hello()
        reply = casualty.lease()
        assert reply["type"] == "work"
        casualty.close()

        # A healthy worker must still complete the whole sweep.
        workers, threads = _start_workers(address, 1)
        assert job.wait(60), "sweep did not recover from the dead worker"
        runs = job.runs()
        _join_workers(coordinator, threads)
        dist_results = ResultSet(
            specs=list(specs), runs=runs,
            trace_names=[trace.name for trace in traces],
        )
        assert dist_results.to_json() == serial_results.to_json()
        assert job.done == job.total  # nothing lost
        assert workers[0].completed == job.total  # requeued cell re-ran

    def test_expired_lease_is_requeued_and_duplicate_ignored(self, specs, traces):
        coordinator = Coordinator(lease_timeout=0.2)
        address = coordinator.start()
        job = coordinator.submit(specs, traces)

        # This client leases a cell and sits on it past the timeout.
        slow = _RawClient(address)
        slow.hello()
        reply = slow.lease()
        assert reply["type"] == "work"
        item = reply["item"]

        workers, threads = _start_workers(address, 1)
        assert job.wait(60), "sweep did not recover from the expired lease"
        assert job.done == job.total

        # The slow worker finally uploads its (now duplicate) result.
        trace = next(t for t in traces if t.fingerprint() == item["trace"])
        spec = PredictorSpec.from_dict(item["spec"])
        result = simulate(spec.build(), trace, track_per_pc=item["track_per_pc"])
        slow.send(
            {"type": "result", "cell": item["cell"], "result": result_to_dict(result)}
        )
        ack = slow.recv()
        assert ack["type"] == "ack" and ack["accepted"] is False
        assert job.done == job.total  # not double counted
        slow.close()
        _join_workers(coordinator, threads)


    def test_stale_failure_after_completion_does_not_fail_job(self, specs, traces):
        coordinator = Coordinator(lease_timeout=0.2)
        address = coordinator.start()
        job = coordinator.submit(specs, traces)

        # Lease a cell, stall past the timeout so another worker redoes it.
        stale = _RawClient(address)
        stale.hello()
        reply = stale.lease()
        assert reply["type"] == "work"
        workers, threads = _start_workers(address, 1)
        assert job.wait(60)
        assert job.error is None

        # The stalled worker now reports a (stale) failure for its cell:
        # the completed job must not be retroactively failed.
        stale.send(
            {"type": "failure", "cell": reply["item"]["cell"], "message": "boom"}
        )
        ack = stale.recv()
        assert ack["type"] == "ack"
        assert job.error is None
        job.runs()  # still a healthy, complete job
        stale.close()
        _join_workers(coordinator, threads)

    def test_transient_worker_errors_are_not_job_fatal(self):
        # Deterministic cell errors go to the coordinator as failure
        # frames; transient host errors must kill the worker instead (its
        # leases are requeued), never the job.
        worker = Worker("127.0.0.1", 1)
        with pytest.raises(RuntimeError):
            worker._report_failure(None, None, {"cell": 1}, RuntimeError("oom-ish"))

    def test_release_job_prunes_scheduler_state(self, specs, traces):
        coordinator = Coordinator()
        address = coordinator.start()
        job = coordinator.submit(specs, traces)
        workers, threads = _start_workers(address, 1)
        assert job.wait(60)
        runs_before = job.runs()
        coordinator.release_job(job)
        # A long-lived service keeps nothing of a settled job ...
        assert not coordinator._cells
        assert not coordinator._traces
        assert job.job_id not in coordinator._jobs
        # ... while the job object the caller holds stays usable.
        assert job.runs().keys() == runs_before.keys()
        _join_workers(coordinator, threads)


class TestProtocolFuzz:
    @pytest.mark.parametrize(
        "payload",
        [
            b"\x00\xff\xfe garbage bytes\n",
            b"not json at all\n",
            b"[1, 2, 3]\n",
            b'{"no_type_key": true}\n',
            b'{"type": "lease"',  # truncated: no newline, then close
            b'{"type": "bogus-verb"}\n',
            b'{"type": "result", "cell": "nope"}\n',
        ],
    )
    def test_garbage_connections_do_not_wedge(self, specs, traces, payload):
        coordinator = Coordinator()
        address = coordinator.start()
        job = coordinator.submit([specs[0]], [traces[0]])

        fuzz = _RawClient(address)
        if payload.startswith(b'{"type": "result"') or payload.startswith(
            b'{"type": "bogus'
        ):
            fuzz.hello()  # reach the worker loop before misbehaving
        fuzz.send_raw(payload)
        if payload.endswith(b"\n"):
            reply = fuzz.recv()  # error frame or clean close, never a hang
            assert reply is None or reply["type"] == "error"
        fuzz.close()  # truncated frame: die mid-line; coordinator must cope

        # The coordinator still serves real workers afterwards.
        workers, threads = _start_workers(address, 1)
        assert job.wait(60), "coordinator wedged after fuzz input"
        _join_workers(coordinator, threads)

    def test_large_frame_then_abrupt_close_does_not_wedge(self, specs, traces):
        coordinator = Coordinator()
        address = coordinator.start()
        job = coordinator.submit([specs[0]], [traces[0]])
        fuzz = _RawClient(address)
        fuzz.send_raw(b'{"type": "hello", "pad": "' + b"x" * (256 * 1024) + b'"}\n')
        fuzz.close()
        workers, threads = _start_workers(address, 1)
        assert job.wait(60)
        _join_workers(coordinator, threads)

    def test_frame_size_cap_is_enforced(self, monkeypatch):
        import io

        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 64)
        oversized = b'{"type": "hello", "pad": "' + b"x" * 128 + b'"}\n'
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.read_frame(io.BytesIO(oversized))

    def test_bad_submit_gets_an_error_frame(self, traces):
        coordinator = Coordinator()
        address = coordinator.start()
        client = _RawClient(address)
        client.send(
            {
                "type": "submit",
                "protocol": protocol.PROTOCOL_VERSION,
                "specs": [{"label": "x", "spec": {"bogus": 1}, "profile": {}}],
                "traces": ["AAAA"],
            }
        )
        reply = client.recv()
        assert reply["type"] == "error"
        client.close()
        coordinator.shutdown()

    def test_protocol_version_mismatch_is_rejected(self, traces):
        coordinator = Coordinator()
        address = coordinator.start()
        client = _RawClient(address)
        client.send({"type": "hello", "role": "worker", "protocol": 99})
        reply = client.recv()
        assert reply["type"] == "error" and "protocol" in reply["message"]
        client.close()
        coordinator.shutdown()


class TestStoreIntegration:
    def test_coordinator_store_prefill_completes_without_workers(
        self, specs, traces, tmp_path, serial_results
    ):
        store = ResultStore(tmp_path / "store")
        # A local sweep populates the store ...
        Experiment(specs, traces=traces, profile="small", store=store).run()
        # ... and the coordinator finds every cell already done.
        coordinator = Coordinator(store=store)
        coordinator.start()
        job = coordinator.submit(specs, traces)
        assert job.wait(5), "store-prefilled job should settle immediately"
        runs = job.runs()
        coordinator.shutdown()
        dist_results = ResultSet(
            specs=list(specs), runs=runs,
            trace_names=[trace.name for trace in traces],
        )
        assert dist_results.to_json() == serial_results.to_json()

    def test_distributed_sweep_persists_cells_for_resume(
        self, specs, traces, tmp_path
    ):
        store = ResultStore(tmp_path / "store")
        coordinator = Coordinator(store=store)
        address = coordinator.start()
        job = coordinator.submit(specs, traces)
        workers, threads = _start_workers(address, 2)
        assert job.wait(60)
        _join_workers(coordinator, threads)
        assert len(store) == job.total
        # A plain local sweep over the same grid reuses every cell.
        reuse = ResultStore(tmp_path / "store")
        Experiment(specs, traces=traces, profile="small", store=reuse).run()
        assert reuse.hits == job.total and reuse.misses == 0

    def test_worker_side_store_serves_cells(self, specs, traces, tmp_path):
        store = ResultStore(tmp_path / "store")
        Experiment(specs, traces=traces, profile="small", store=store).run()
        # Coordinator has no store; the worker's local store has it all.
        coordinator = Coordinator()
        address = coordinator.start()
        job = coordinator.submit(specs, traces)
        workers, threads = _start_workers(address, 1, store=store)
        assert job.wait(60)
        _join_workers(coordinator, threads)
        assert job.done == job.total


class TestResultStoreHooks:
    def test_result_dict_round_trip(self, traces):
        from repro.store import result_from_dict

        spec = PredictorSpec.from_named("gehl", profile="small")
        result = simulate(spec.build(), traces[0], track_per_pc=True)
        restored = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
        assert restored == result

    def test_import_record_round_trip(self, specs, traces, tmp_path):
        source = ResultStore(tmp_path / "source")
        Experiment(specs, traces=traces, profile="small", store=source).run()
        destination = ResultStore(tmp_path / "destination")
        for record in source.export():
            destination.import_record(record)
        assert sorted(destination.keys()) == sorted(source.keys())
        # The merged store serves the sweep without recomputation.
        merged = ResultStore(tmp_path / "destination")
        Experiment(specs, traces=traces, profile="small", store=merged).run()
        assert merged.misses == 0

    def test_import_record_rejects_junk(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(ValueError):
            store.import_record({"no": "key"})
        with pytest.raises(ValueError):
            store.import_record({"key": "abc", "version": 1, "result": {}})
        with pytest.raises(ValueError):
            store.import_record("not a dict")


class TestDistCli:
    def test_worker_bad_connect_is_an_error(self, capsys):
        from repro.cli import main

        assert main(["worker", "--connect", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_worker_unreachable_coordinator_exits_distinctly(self, capsys):
        from repro.cli import EXIT_UNREACHABLE, main

        assert main([
            "worker", "--connect", "127.0.0.1:1", "--connect-retry", "0",
        ]) == EXIT_UNREACHABLE
        err = capsys.readouterr().err
        assert "worker failed" in err
        assert "cannot reach coordinator" in err

    def test_submit_unreachable_coordinator_fails_cleanly(self, capsys):
        from repro.cli import main

        exit_code = main([
            "submit", "--connect", "127.0.0.1:1", "--base", "tage-gsc",
            "--benchmarks", "SPEC2K6-00", "--length", "300", "--profile", "small",
        ])
        assert exit_code == 1
        assert "submit failed" in capsys.readouterr().err

    def test_store_ls_json_output(self, specs, traces, tmp_path, capsys):
        from repro.cli import main

        store = ResultStore(tmp_path / "store")
        Experiment(specs, traces=traces, profile="small", store=store).run()
        assert main(["store", "ls", "--json", "--store", str(tmp_path / "store")]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert len(entries) == len(specs) * len(traces)
        for entry in entries:
            assert set(entry) >= {"key", "label", "trace_name", "mpki"}

    def test_store_import_cli_merges(self, specs, traces, tmp_path, capsys):
        from repro.cli import main

        store = ResultStore(tmp_path / "source")
        Experiment(
            [specs[0]], traces=traces, profile="small", store=store
        ).run()
        dump = tmp_path / "dump.json"
        assert main([
            "store", "export", "--store", str(tmp_path / "source"),
            "--output", str(dump),
        ]) == 0
        capsys.readouterr()
        assert main([
            "store", "import", str(dump), "--store", str(tmp_path / "merged"),
        ]) == 0
        assert f"imported {len(traces)} record(s)" in capsys.readouterr().err
