"""Storage integrity and resource-exhaustion hardening tests.

Covers the checksummed result store (every written record carries a
verifying ``sha256:`` checksum; bit rot is detected on load and *never
served*), the ``repro store verify [--repair]`` scrub (corrupt and
truncated records classified, quarantined into ``corrupt/``, and
transparently recomputed by the next sweep), torn-write atomicity (a
writer killed between scratch and rename leaves the old record or none),
the :mod:`repro.common.diskguard` disk-pressure degradation ladder
(telemetry sheds first, durable writes refuse with one actionable error,
low-disk workers stop receiving chunked-trace leases), journal tail
tearing / healing / auto-compaction, and the filesystem chaos points
(``store.write_enospc``, ``store.read_corrupt``, ``journal.torn_tail``,
``spool.enospc``) driving dist sweeps that stay bit-identical to serial
once the faults clear.
"""

from __future__ import annotations

import gzip
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.api.experiment import Experiment
from repro.api.specs import PredictorSpec
from repro.cli import EXIT_CORRUPTION, main
from repro.common import diskguard
from repro.dist import Coordinator, CoordinatorJournal, Worker, chaos, protocol
from repro.dist.worker import _SPOOL_PREFIX, sweep_orphan_spools
from repro.obs.events import EventLog
from repro.obs.http import StatusServer
from repro.obs.timings import TimingLog
from repro.store import ResultStore, result_to_dict
from repro.store.result_store import _classify_record, _record_checksum
from repro.trace.chunked import load_chunked_trace, write_chunked_trace
from repro.workloads.suites import generate_suite

BENCHMARKS = ["SPEC2K6-00", "SPEC2K6-04"]
LENGTH = 300


@pytest.fixture(scope="module")
def traces():
    return generate_suite(
        "cbp4like", target_conditional_branches=LENGTH, benchmarks=BENCHMARKS
    )


@pytest.fixture(scope="module")
def specs():
    return [
        PredictorSpec.from_named("tage-gsc", profile="small"),
        PredictorSpec.from_named("tage-gsc", profile="small", imli_sic=True),
    ]


@pytest.fixture(scope="module")
def serial_results(specs, traces):
    return Experiment(specs, traces=traces, profile="small", store=False).run()


@pytest.fixture(autouse=True)
def _clean_slate(monkeypatch):
    """Chaos disarmed and diskguard on pristine defaults around every test."""
    chaos.configure(None)
    monkeypatch.delenv("REPRO_DISK_HEADROOM", raising=False)
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    diskguard.reset()
    yield
    chaos.configure(None)
    diskguard.reset()


def _fill_store(root, specs, traces, compress=False):
    """Run the sweep into a fresh store at ``root``; returns the store."""
    store = ResultStore(root, compress=compress)
    Experiment(specs, traces=traces, profile="small", store=store).run()
    return store


def _record_files(store):
    return list(store._record_paths())


def _flip_result_value(path):
    """Damage a record's payload while keeping it valid JSON (bit rot)."""
    raw = path.read_bytes()
    data = gzip.decompress(raw) if path.suffix == ".gz" else raw
    record = json.loads(data.decode("utf-8"))
    record["result"]["mispredictions"] = int(record["result"]["mispredictions"]) + 1
    out = json.dumps(record, ensure_ascii=False).encode("utf-8")
    if path.suffix == ".gz":
        out = gzip.compress(out, mtime=0)
    path.write_bytes(out)
    return record["key"]


def _content_view(store):
    """Everything identity-relevant about a store's records, keyed by cell.

    ``created`` (a wall-clock stamp) legitimately differs between two
    runs of the same sweep, so "byte-identical store" means: same keys,
    and per key the same label/spec/trace/result bytes.
    """
    view = {}
    for record in store.records():
        view[record["key"]] = json.dumps(
            {
                field: record[field]
                for field in ("label", "spec", "trace_fingerprint", "result")
            },
            sort_keys=True,
            default=repr,
        )
    return view


class TestChecksummedRecords:
    def test_every_written_record_verifies(self, tmp_path, specs, traces):
        store = _fill_store(tmp_path / "store", specs, traces)
        records = list(store.records())
        assert len(records) == len(specs) * len(traces)
        for record in records:
            assert str(record["checksum"]).startswith("sha256:")
            clean = {
                field: value
                for field, value in record.items()
                if field not in ("path", "age_seconds")
            }
            assert _record_checksum(clean) == record["checksum"]
        report = store.verify()
        assert report["scanned"] == len(records)
        assert report["ok"] == len(records)
        assert report["corrupt"] == report["truncated"] == report["legacy"] == 0
        assert report["problems"] == []

    def test_checksum_survives_export_import_byte_identically(
        self, tmp_path, specs, traces
    ):
        source = _fill_store(tmp_path / "source", specs, traces)
        target = ResultStore(tmp_path / "target")
        for record in source.export():
            target.import_record(record)
        assert target.verify()["ok"] == len(specs) * len(traces)
        for path in _record_files(source):
            twin = target.root / path.relative_to(source.root)
            assert twin.read_bytes() == path.read_bytes()

    def test_legacy_record_without_checksum_still_served(self, tmp_path, specs, traces):
        store = _fill_store(tmp_path / "store", specs, traces)
        path = _record_files(store)[0]
        record = json.loads(path.read_text(encoding="utf-8"))
        del record["checksum"]
        path.write_text(json.dumps(record, ensure_ascii=False), encoding="utf-8")
        assert store.get(record["key"]) is not None  # served normally
        report = store.verify()
        assert report["legacy"] == 1
        assert report["corrupt"] == report["truncated"] == 0

    def test_bit_rotted_record_is_never_served(self, tmp_path, specs, traces):
        store = _fill_store(tmp_path / "store", specs, traces)
        path = _record_files(store)[0]
        key = _flip_result_value(path)
        # Valid JSON, valid schema -- only the checksum knows.
        assert store.get(key) is None
        assert not path.exists()  # dropped so the cell is recomputed

    def test_gzip_records_checksummed_too(self, tmp_path, specs, traces):
        store = _fill_store(tmp_path / "store", specs, traces, compress=True)
        assert store.verify()["ok"] == len(specs) * len(traces)
        path = _record_files(store)[0]
        key = _flip_result_value(path)
        assert store.get(key) is None


class TestVerifyRepairRerun:
    """The acceptance round trip: corrupt -> detect -> quarantine -> re-run."""

    def test_quarantined_cells_are_recomputed_exactly(
        self, tmp_path, specs, traces
    ):
        reference = _fill_store(tmp_path / "reference", specs, traces)
        store = _fill_store(tmp_path / "store", specs, traces)
        files = _record_files(store)
        total = len(specs) * len(traces)
        assert len(files) == total
        _flip_result_value(files[0])
        files[1].write_bytes(files[1].read_bytes()[: files[1].stat().st_size // 2])

        # Detection without repair leaves the files in place.
        report = store.verify(repair=False)
        assert report["corrupt"] == 1
        assert report["truncated"] == 1
        assert report["quarantined"] == 0
        assert files[0].exists() and files[1].exists()

        # Repair quarantines into corrupt/ -- moved, not deleted.
        report = store.verify(repair=True)
        assert report["quarantined"] == 2
        assert not files[0].exists() and not files[1].exists()
        quarantined = sorted((store.root / "corrupt").iterdir())
        assert len(quarantined) == 2
        for problem in report["problems"]:
            assert problem["quarantined_to"]

        # The next sweep recomputes exactly the two quarantined cells.
        rerun_store = ResultStore(store.root)
        Experiment(specs, traces=traces, profile="small", store=rerun_store).run()
        assert rerun_store.misses == 2
        assert rerun_store.hits == total - 2

        # ...and the healed store equals the uncorrupted reference.
        assert store.verify()["ok"] == total
        assert _content_view(store) == _content_view(reference)

    def test_hand_truncated_records_classified(self, tmp_path, specs, traces):
        plain = _fill_store(tmp_path / "plain", specs, traces)
        packed = _fill_store(tmp_path / "packed", specs, traces, compress=True)
        for store in (plain, packed):
            path = _record_files(store)[0]
            path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
            status, detail = _classify_record(path)
            assert status == "truncated", detail
        empty = _record_files(plain)[1]
        empty.write_bytes(b"")
        assert _classify_record(empty) == ("truncated", "empty file")

    def test_cli_verify_exit_codes_and_json(self, tmp_path, specs, traces, capsys):
        store = _fill_store(tmp_path / "store", specs, traces)
        argv = ["store", "verify", "--store", str(store.root)]
        assert main(argv) == 0
        _flip_result_value(_record_files(store)[0])
        capsys.readouterr()  # drain the clean run's human-readable output
        assert main(argv + ["--json"]) == EXIT_CORRUPTION
        report = json.loads(capsys.readouterr().out)
        assert report["corrupt"] == 1
        assert report["quarantined"] == 0
        # --repair still exits 5 (corruption *found*), but quarantines.
        assert main(argv + ["--repair"]) == EXIT_CORRUPTION
        assert any((store.root / "corrupt").iterdir())
        assert main(argv) == 0  # the scrubbed store is clean


class TestTornWrites:
    """A writer killed mid-put leaves the old record or none -- never half."""

    def _kill_during_put(self, root, compress, mode, result, key):
        script = (
            "import json, os, sys\n"
            "from pathlib import Path\n"
            "from repro.store import ResultStore\n"
            "from repro.store.result_store import result_from_dict\n"
            "root, compress, mode, payload, key = sys.argv[1:6]\n"
            "store = ResultStore(root, compress=compress == '1')\n"
            "result = result_from_dict(json.loads(payload))\n"
            "if mode == 'before-rename':\n"
            "    os.replace = lambda *a, **k: os._exit(137)\n"
            "else:\n"
            "    def half(self, data):\n"
            "        with open(self, 'wb') as handle:\n"
            "            handle.write(data[: len(data) // 2])\n"
            "        os._exit(137)\n"
            "    Path.write_bytes = half\n"
            "store.put(key, result)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        process = subprocess.run(
            [
                sys.executable, "-c", script,
                str(root), "1" if compress else "0", mode,
                json.dumps(result_to_dict(result)), key,
            ],
            env=env, capture_output=True, timeout=120,
        )
        assert process.returncode == 137, process.stderr.decode()

    @pytest.mark.parametrize("compress", [False, True], ids=["plain", "gzip"])
    @pytest.mark.parametrize("mode", ["before-rename", "mid-scratch"])
    def test_killed_writer_leaves_old_record_or_none(
        self, tmp_path, specs, traces, serial_results, compress, mode
    ):
        store = ResultStore(tmp_path / "store", compress=compress)
        spec = specs[0].resolve()
        result = serial_results.run_for(specs[0].label).results[0]
        key = ResultStore.cell_key(
            spec.content(), "small", traces[0].fingerprint()
        )
        # Fresh store: the kill must leave *no* record for the key.
        self._kill_during_put(store.root, compress, mode, result, key)
        assert store.get(key) is None
        assert store.verify()["scanned"] == 0  # no torn record surfaced
        # Seeded store: the kill must leave the *old* bytes untouched.
        path = store.put(key, result)
        before = path.read_bytes()
        self._kill_during_put(store.root, compress, mode, result, key)
        assert path.read_bytes() == before
        # Each killed writer leaked one scratch file; scratches are
        # invisible to reads and verify, and gc sweeps them.
        scratches = [
            candidate
            for candidate in path.parent.iterdir()
            if candidate.name.startswith(".")
        ]
        assert len(scratches) == 2
        assert store.verify()["scanned"] == 1  # the live record only
        future = time.time() + 60
        os.utime(path, (future, future))  # keep the live record past gc
        store.gc(0.0)
        assert not any(
            candidate.name.startswith(".") for candidate in path.parent.iterdir()
        )
        assert store.get(key) is not None  # gc spared the live record


class TestDiskGuard:
    def test_parse_size(self):
        assert diskguard.parse_size("1024") == 1024
        assert diskguard.parse_size("4k") == 4096
        assert diskguard.parse_size("1m") == 1024**2
        assert diskguard.parse_size("2G") == 2 * 1024**3
        assert diskguard.parse_size("1t") == 1024**4
        assert diskguard.parse_size("1.5k") == 1536
        for bad in ("", "x", "-1", "12q"):
            with pytest.raises(ValueError):
                diskguard.parse_size(bad)

    def test_thresholds_override_and_disable(self, monkeypatch):
        monkeypatch.delenv(diskguard.ENV_VAR, raising=False)
        assert diskguard.thresholds() == (
            diskguard.DEFAULT_LOW_BYTES, diskguard.DEFAULT_CRITICAL_BYTES
        )
        monkeypatch.setenv(diskguard.ENV_VAR, "1g,128m")
        assert diskguard.thresholds() == (1024**3, 128 * 1024**2)
        monkeypatch.setenv(diskguard.ENV_VAR, "2g")
        low, critical = diskguard.thresholds()
        assert low == 2 * 1024**3
        assert 0 < critical <= low
        monkeypatch.setenv(diskguard.ENV_VAR, "off")
        assert diskguard.thresholds() is None
        monkeypatch.setenv(diskguard.ENV_VAR, "not-a-size")
        assert diskguard.thresholds() is None  # malformed disables, never fails

    def test_states_forced_by_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(diskguard.ENV_VAR, "1t,1")
        diskguard.reset()
        assert diskguard.state(tmp_path) == "low"
        assert diskguard.is_low(tmp_path) and not diskguard.is_critical(tmp_path)
        diskguard.check_writable(tmp_path)  # low does not refuse writes
        monkeypatch.setenv(diskguard.ENV_VAR, "1t,1t")
        diskguard.reset()
        assert diskguard.state(tmp_path) == "critical"
        with pytest.raises(diskguard.DiskPressureError) as excinfo:
            diskguard.check_writable(tmp_path, what="test write")
        message = str(excinfo.value)
        assert "test write" in message
        assert "REPRO_DISK_HEADROOM" in message  # actionable: names the knob
        monkeypatch.setenv(diskguard.ENV_VAR, "off")
        diskguard.reset()
        assert diskguard.state(tmp_path) == "ok"

    def test_state_probes_unborn_paths(self, tmp_path, monkeypatch):
        monkeypatch.setenv(diskguard.ENV_VAR, "1t,1t")
        diskguard.reset()
        assert diskguard.state(tmp_path / "no" / "such" / "dir") == "critical"

    def test_store_write_refuses_under_critical(
        self, tmp_path, specs, traces, serial_results, monkeypatch
    ):
        store = ResultStore(tmp_path / "store")
        result = serial_results.run_for(specs[0].label).results[0]
        monkeypatch.setenv(diskguard.ENV_VAR, "1t,1t")
        diskguard.reset()
        with pytest.raises(diskguard.DiskPressureError, match="store record write"):
            store.put("0" * 64, result)
        assert not (store.root / "objects").exists()  # nothing half-written
        monkeypatch.delenv(diskguard.ENV_VAR)
        diskguard.reset()
        store.put("0" * 64, result)  # pressure cleared: writes resume

    def test_serial_sweep_under_critical_completes_with_visible_shed(
        self, tmp_path, specs, traces, serial_results, monkeypatch, capsys
    ):
        # The serial runner treats the store as best-effort: under
        # critical pressure the sweep still completes (results in
        # memory), but the shed is counted and warned about once --
        # never a silently empty store.
        store = ResultStore(tmp_path / "store")
        monkeypatch.setenv(diskguard.ENV_VAR, "1t,1t")
        diskguard.reset()
        results = Experiment(
            specs, traces=traces, profile="small", store=store
        ).run()
        _assert_bit_identical(
            {spec.label: results.run_for(spec.label) for spec in specs},
            serial_results,
            specs,
        )
        total = len(specs) * len(traces)
        assert store.writes_shed == total
        assert not (store.root / "objects").exists()
        warning = capsys.readouterr().err
        assert warning.count("shedding result persists") == 1  # once, not per cell
        assert "REPRO_DISK_HEADROOM" in warning

    def test_journal_append_refuses_under_critical(self, tmp_path, monkeypatch):
        journal = CoordinatorJournal(tmp_path / "journal.jsonl")
        journal.record_admit(1, {})
        monkeypatch.setenv(diskguard.ENV_VAR, "1t,1t")
        diskguard.reset()
        with pytest.raises(
            diskguard.DiskPressureError, match="coordinator journal append"
        ):
            journal.record_admit(2, {})
        monkeypatch.delenv(diskguard.ENV_VAR)
        diskguard.reset()
        journal.record_admit(3, {})
        journal.close()
        assert [r["job"] for r in CoordinatorJournal(journal.path).replay()] == [1, 3]

    def test_event_log_sheds_at_critical_not_low(self, tmp_path, monkeypatch):
        log = EventLog(tmp_path / "events.jsonl")
        monkeypatch.setenv(diskguard.ENV_VAR, "1t,1")
        diskguard.reset()
        log.emit("survives_low")  # low: best-effort writes still land
        monkeypatch.setenv(diskguard.ENV_VAR, "1t,1t")
        diskguard.reset()
        log.emit("shed_at_critical")
        monkeypatch.delenv(diskguard.ENV_VAR)
        diskguard.reset()
        text = log.path.read_text(encoding="utf-8")
        assert "survives_low" in text
        assert "shed_at_critical" not in text

    def test_timing_log_sheds_file_but_keeps_histograms(self, tmp_path, monkeypatch):
        timings = TimingLog(tmp_path / "timings.jsonl", component="test")
        monkeypatch.setenv(diskguard.ENV_VAR, "1t,1t")
        diskguard.reset()
        timings.record(
            backend="serial", label="l", trace="t", phases={"simulate": 0.5}
        )
        assert not timings.path.exists()  # the file write shed...
        assert timings.summary()["phases"]  # ...the in-memory aggregate did not


class TestWorkerSpoolHygiene:
    def test_orphan_spools_swept_by_pid_and_age(self, monkeypatch, tmp_path):
        monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
        dead = tmp_path / f"{_SPOOL_PREFIX}999999999-abc"
        dead.mkdir()
        (dead / "chunk").write_bytes(b"x" * 128)
        alive = tmp_path / f"{_SPOOL_PREFIX}{os.getpid()}-self"
        alive.mkdir()
        fresh_unparseable = tmp_path / f"{_SPOOL_PREFIX}legacy"
        fresh_unparseable.mkdir()
        old_unparseable = tmp_path / f"{_SPOOL_PREFIX}ancient"
        old_unparseable.mkdir()
        stale = time.time() - 48 * 3600
        os.utime(old_unparseable, (stale, stale))
        assert sweep_orphan_spools() == 2
        assert not dead.exists()  # pid verifiably dead: removed at once
        assert not old_unparseable.exists()  # unknown pid, stale: removed
        assert alive.exists()  # our own spool: never touched
        assert fresh_unparseable.exists()  # unknown pid, fresh: kept

    def test_worker_spools_are_pid_tagged(self, tmp_path):
        worker = Worker("127.0.0.1", 1, name="tagged")
        trace = generate_suite(
            "cbp4like", target_conditional_branches=LENGTH,
            benchmarks=["SPEC2K6-00"],
        )[0]
        directory = tmp_path / "chunked"
        write_chunked_trace(trace, directory, chunk_branches=200)
        chunked = load_chunked_trace(directory)
        manifest = json.loads(
            (directory / "manifest.json").read_text(encoding="utf-8")
        )
        worker._chunked_trace(chunked.fingerprint(), manifest)
        try:
            assert f"{_SPOOL_PREFIX}{os.getpid()}-" in worker._spool.name
        finally:
            worker._spool.cleanup()


class TestJournalIntegrity:
    def test_torn_tail_chaos_heals_on_next_append(self, tmp_path):
        journal = CoordinatorJournal(tmp_path / "journal.jsonl")
        chaos.configure("journal.torn_tail:1:1")
        with pytest.raises(OSError, match="torn journal append"):
            journal.record_admit(1, {"specs": ["a"]})
        raw = journal.path.read_bytes()
        assert raw and not raw.endswith(b"\n")  # exactly a crash mid-write
        assert journal.replay() == []  # the torn line is skipped
        journal.record_admit(2, {"specs": ["b"]})  # chaos limit spent
        assert [r["job"] for r in journal.replay()] == [2]
        journal.close()

    def test_torn_tail_healed_on_reopen(self, tmp_path):
        first = CoordinatorJournal(tmp_path / "journal.jsonl")
        chaos.configure("journal.torn_tail:1:1")
        with pytest.raises(OSError):
            first.record_admit(1, {})
        first.close()
        chaos.configure(None)
        second = CoordinatorJournal(tmp_path / "journal.jsonl")
        second.record_admit(2, {})
        second.close()
        assert [r["job"] for r in CoordinatorJournal(second.path).replay()] == [2]

    def test_auto_compaction_bounds_the_file(self, tmp_path):
        journal = CoordinatorJournal(
            tmp_path / "journal.jsonl", compact_threshold=512
        )
        payload = {"specs": ["x" * 64]}
        for job_id in range(1, 40):
            journal.record_admit(job_id, payload)
            journal.record_settled(job_id)
        size = journal.path.stat().st_size
        # ~39 admit+settle pairs of ~100 bytes each would be ~8 KiB
        # append-only; compaction kept the file near one threshold.
        assert size < 2 * 512 + 256
        assert journal.replay() == []
        journal.record_admit(99, payload)  # the compacted journal still works
        assert [r["job"] for r in journal.replay()] == [99]
        journal.close()

    def test_compaction_rearms_on_all_live_journal(self, tmp_path):
        journal = CoordinatorJournal(
            tmp_path / "journal.jsonl", compact_threshold=256
        )
        for job_id in range(1, 30):  # nothing ever settles: nothing to drop
            journal.record_admit(job_id, {"specs": ["y" * 32]})
        assert len(journal.replay()) == 29
        journal.close()


class TestStoreChaosPoints:
    def test_write_enospc_leaves_no_partial_record(
        self, tmp_path, specs, serial_results
    ):
        store = ResultStore(tmp_path / "store")
        result = serial_results.run_for(specs[0].label).results[0]
        chaos.configure("store.write_enospc:1:1")
        with pytest.raises(OSError, match="ENOSPC|No space"):
            store.put("a" * 64, result)
        shard = store.root / "objects" / "aa"
        assert not shard.exists() or not any(shard.iterdir())
        path = store.put("a" * 64, result)  # fault cleared: write lands
        assert store.verify()["ok"] == 1
        assert not any(p.name.startswith(".") for p in path.parent.iterdir())

    def test_read_corrupt_recomputes_instead_of_serving(
        self, tmp_path, specs, serial_results
    ):
        store = ResultStore(tmp_path / "store")
        result = serial_results.run_for(specs[0].label).results[0]
        key = "b" * 64
        store.put(key, result)
        chaos.configure("store.read_corrupt:1:1")
        assert store.get(key) is None  # flipped bytes: a miss, never served
        store.put(key, result)
        served = store.get(key)
        assert served is not None
        assert result_to_dict(served) == result_to_dict(result)


def _start_workers(address, count, **kwargs):
    host, port = address
    kwargs.setdefault("reconnect", 5.0)
    workers = [
        Worker(host, port, name=f"integrity-worker-{i}", **kwargs)
        for i in range(count)
    ]
    threads = [
        threading.Thread(target=worker.run, daemon=True) for worker in workers
    ]
    for thread in threads:
        thread.start()
    return workers, threads


def _join_workers(coordinator, threads):
    coordinator.shutdown(graceful=True)
    for thread in threads:
        thread.join(timeout=15)
    assert not any(thread.is_alive() for thread in threads), "worker thread hung"


def _assert_bit_identical(runs, serial_results, specs):
    for spec in specs:
        ours = runs[spec.label].results
        theirs = serial_results.run_for(spec.label).results
        assert len(ours) == len(theirs)
        for mine, ref in zip(ours, theirs):
            assert result_to_dict(mine) == result_to_dict(ref)


class TestDistDiskPressure:
    def test_low_disk_sweep_completes_and_is_visible(
        self, tmp_path, specs, traces, serial_results, monkeypatch
    ):
        # low (not critical) everywhere: store/journal writes still land,
        # telemetry still flows, but every worker advertises low_disk.
        monkeypatch.setenv(diskguard.ENV_VAR, "1t,1")
        diskguard.reset()
        store = ResultStore(tmp_path / "store")
        coordinator = Coordinator(store=store)
        address = coordinator.start()
        job = coordinator.submit(specs, traces)
        _, threads = _start_workers(address, 2)
        assert job.wait(60), "sweep did not finish under low disk"
        runs = job.runs()
        snapshot = coordinator.status_snapshot()
        workers = coordinator.workers_snapshot()
        metrics_text = StatusServer(coordinator, store=store)._render_metrics()
        _join_workers(coordinator, threads)
        _assert_bit_identical(runs, serial_results, specs)
        # The pressure was visible the whole time: snapshots, /metrics
        # gauges and the event log all carried it.
        assert snapshot["workers_low_disk"] == 2
        assert all(row["low_disk"] for row in workers)
        assert "repro_workers_low_disk 2" in metrics_text
        assert "repro_store_disk_low 1" in metrics_text
        assert "repro_store_disk_critical 0" in metrics_text
        events = (store.root / "repro.obs.log").read_text(encoding="utf-8")
        assert "worker_low_disk" in events

    def test_low_disk_worker_denied_chunked_cells(
        self, tmp_path, specs, monkeypatch
    ):
        trace = generate_suite(
            "cbp4like", target_conditional_branches=LENGTH,
            benchmarks=["SPEC2K6-00"],
        )[0]
        directory = tmp_path / "chunked"
        write_chunked_trace(trace, directory, chunk_branches=200)
        chunked = load_chunked_trace(directory)
        store = ResultStore(tmp_path / "store")
        coordinator = Coordinator(store=store)
        address = coordinator.start()
        coordinator.submit(specs, [chunked])
        shed_before = coordinator._metric_lease_shed.value()
        import socket as socket_module

        sock = socket_module.create_connection(address, timeout=10)
        rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
        try:
            protocol.write_frame(
                wfile,
                {
                    "type": "hello", "role": "worker",
                    "protocol": protocol.PROTOCOL_VERSION,
                    "worker": "squeezed", "low_disk": True,
                },
            )
            assert protocol.read_frame(rfile)["type"] == "welcome"
            protocol.write_frame(wfile, {"type": "lease"})
            reply = protocol.read_frame(rfile)
            # Every pending cell is chunked-trace: all withheld from us.
            assert reply["type"] == "wait"
            assert coordinator._metric_lease_shed.value() > shed_before
            assert coordinator.status_snapshot()["workers_low_disk"] == 1
            # The renew heartbeat reports the spool drained: cells flow.
            protocol.write_frame(
                wfile, {"type": "renew", "cells": [], "low_disk": False}
            )
            assert protocol.read_frame(rfile)["type"] == "renewed"
            protocol.write_frame(wfile, {"type": "lease"})
            reply = protocol.read_frame(rfile)
            assert reply["type"] == "work"
            events = (store.root / "repro.obs.log").read_text(encoding="utf-8")
            assert "lease_shed_low_disk" in events
        finally:
            for stream in (wfile, rfile):
                try:
                    stream.close()
                except OSError:
                    pass
            sock.close()
            coordinator.shutdown()

    def test_critical_store_disk_sheds_new_admits(
        self, tmp_path, specs, traces, monkeypatch
    ):
        store = ResultStore(tmp_path / "store")
        coordinator = Coordinator(store=store)
        coordinator.start()
        try:
            monkeypatch.setenv(diskguard.ENV_VAR, "1t,1t")
            diskguard.reset()
            with pytest.raises(ValueError, match="new job admission"):
                coordinator.submit(specs, traces)
            assert coordinator._metric_admits_shed.value() >= 1
            monkeypatch.delenv(diskguard.ENV_VAR)
            diskguard.reset()
            job = coordinator.submit(specs, traces)  # pressure gone: admitted
            assert job.total == len(specs) * len(traces)
        finally:
            coordinator.shutdown()


class TestDistFsFaults:
    """Sweeps complete bit-identically to serial once fs faults clear."""

    def test_spool_enospc_fails_lease_cleanly_then_recovers(
        self, tmp_path, specs, monkeypatch
    ):
        trace = generate_suite(
            "cbp4like", target_conditional_branches=LENGTH,
            benchmarks=["SPEC2K6-00"],
        )[0]
        directory = tmp_path / "chunked"
        write_chunked_trace(trace, directory, chunk_branches=200)
        chunked = load_chunked_trace(directory)
        reference = Experiment(
            specs, traces=[str(directory)], profile="small", store=False
        ).run()
        chaos.configure("spool.enospc:1:1")
        coordinator = Coordinator()
        address = coordinator.start()
        job = coordinator.submit(specs, [chunked])
        _, threads = _start_workers(address, 2, reconnect=10.0)
        assert job.wait(90), "sweep did not finish after spool ENOSPC"
        runs = job.runs()
        _join_workers(coordinator, threads)
        for spec in specs:
            assert [result_to_dict(r) for r in runs[spec.label].results] == [
                result_to_dict(r)
                for r in reference.run_for(spec.label).results
            ]

    def test_sweep_with_torn_journal_is_bit_identical(
        self, tmp_path, specs, traces, serial_results
    ):
        chaos.configure("journal.torn_tail:1:2")
        coordinator = Coordinator(
            store=ResultStore(tmp_path / "store"),
            journal=str(tmp_path / "journal.jsonl"),
        )
        address = coordinator.start()
        job = coordinator.submit(specs, traces)
        _, threads = _start_workers(address, 2)
        assert job.wait(60), "sweep did not finish with a torn journal"
        runs = job.runs()
        _join_workers(coordinator, threads)
        _assert_bit_identical(runs, serial_results, specs)
        # The torn journal never poisons recovery: a restart replays
        # whatever survived and recovers nothing twice.
        second = Coordinator(
            store=ResultStore(tmp_path / "store"),
            journal=str(tmp_path / "journal.jsonl"),
        )
        second.start()
        for recovered in second.recovered_jobs:
            assert recovered.wait(10)  # store-complete: settles instantly
        second.shutdown()

    def test_corrupted_store_cells_recomputed_in_dist_sweep(
        self, tmp_path, specs, traces, serial_results
    ):
        store = _fill_store(tmp_path / "store", specs, traces)
        files = _record_files(store)
        _flip_result_value(files[0])
        files[1].write_bytes(files[1].read_bytes()[: files[1].stat().st_size // 2])
        coordinator = Coordinator(store=ResultStore(store.root))
        address = coordinator.start()
        job = coordinator.submit(specs, traces)
        _, threads = _start_workers(address, 2)
        assert job.wait(60), "sweep did not finish over a damaged store"
        runs = job.runs()
        _join_workers(coordinator, threads)
        # The damaged cells were recomputed, never served.
        _assert_bit_identical(runs, serial_results, specs)
        assert ResultStore(store.root).verify()["corrupt"] == 0
