"""Speculative-state management: why IMLI is cheap where local history is not.

The hardware argument of the paper (Sections 2.3 and 4.4) is that the IMLI
components only need a tiny checkpoint per in-flight branch -- the 10-bit
IMLI counter plus the 16-bit PIPE vector -- whereas local-history components
(and the wormhole predictor) require an associative search of the window of
in-flight branches on every fetch cycle.

This example:

1. runs the front-end model of :mod:`repro.sim.checkpointing`, which advances
   a *speculative* IMLI counter using predicted directions and repairs it
   from checkpoints on mispredictions, verifying the recovery is exact;
2. prints the per-fetch bookkeeping cost of every history kind.

Run with::

    python examples/speculative_checkpointing.py
"""

from __future__ import annotations

from repro import PredictorSpec
from repro.analysis.tables import format_key_values, format_table
from repro.sim.checkpointing import run_checkpoint_recovery, speculative_management_cost
from repro.workloads import generate_benchmark
from repro.workloads.suites import get_benchmark


def main() -> None:
    trace = generate_benchmark(
        get_benchmark("cbp4like", "SPEC2K6-04"), target_conditional_branches=4000
    )
    predictor = PredictorSpec.from_named("tage-gsc+imli", profile="small").build()

    print("Running the speculative fetch model with checkpoint-based recovery ...")
    report = run_checkpoint_recovery(predictor, trace)
    print()
    print(format_key_values(
        {
            "trace": report.trace_name,
            "conditional branches": report.conditional_branches,
            "mispredictions": report.mispredictions,
            "checkpoint restores": report.recoveries,
            "checkpoint size (bits/branch)": report.checkpoint_bits_per_branch,
            "speculative/committed divergences": report.divergence_events,
            "recovered exactly": report.recovered_correctly,
        },
        title="Checkpoint-based speculative IMLI management",
    ))

    print()
    costs = speculative_management_cost(inflight_window=64)
    rows = [
        (
            kind,
            details["checkpoint_bits"],
            "yes" if details["associative_search"] else "no",
            details["comparisons_per_fetch"],
        )
        for kind, details in costs.items()
    ]
    print(format_table(
        ["history kind", "checkpoint bits / branch", "in-flight window search", "comparisons / fetch"],
        rows,
        title="Per-fetch cost of speculative history management (64-entry window)",
    ))
    print()
    print("The IMLI state costs 26 checkpoint bits per in-flight branch and no")
    print("associative search -- the same discipline as the global history head")
    print("pointer -- which is the paper's case for preferring IMLI components")
    print("over local-history components in real hardware.")


if __name__ == "__main__":
    main()
