"""Predictor shoot-out: from 2-bit counters to TAGE-GSC + IMLI.

Runs the whole predictor hierarchy implemented by the library over a few
synthetic benchmarks and prints one MPKI column per predictor, together with
its storage budget -- a condensed view of thirty years of branch prediction.

Run with::

    python examples/predictor_shootout.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.predictors import (
    BimodalPredictor,
    GSharePredictor,
    PerceptronPredictor,
    TAGEPredictor,
    build_named,
)
from repro.predictors.tage import TAGEConfig
from repro.sim import SuiteRunner
from repro.workloads import generate_suite

BENCHMARKS = ["SPEC2K6-00", "SPEC2K6-04", "SPEC2K6-12", "SERVER-01", "MM-4"]

PREDICTORS = [
    ("bimodal", lambda: BimodalPredictor(entries=4096)),
    ("gshare", lambda: GSharePredictor(entries=4096, history_length=12)),
    ("perceptron", lambda: PerceptronPredictor(entries=256, history_length=24)),
    ("tage", lambda: TAGEPredictor(TAGEConfig(num_tables=6, table_entries=256,
                                              base_entries=1024, max_history=80))),
    ("gehl", lambda: build_named("gehl", profile="small")),
    ("tage-gsc", lambda: build_named("tage-gsc", profile="small")),
    ("tage-gsc+imli", lambda: build_named("tage-gsc+imli", profile="small")),
    ("tage-gsc+imli+l", lambda: build_named("tage-gsc+imli+l", profile="small")),
]


def main() -> None:
    print(f"Generating {len(BENCHMARKS)} benchmarks ...")
    traces = generate_suite("cbp4like", target_conditional_branches=3000, benchmarks=BENCHMARKS)
    runner = SuiteRunner(traces, profile="small")

    columns = []
    for name, factory in PREDICTORS:
        print(f"Simulating {name} ...")
        columns.append((name, runner.run(name, factory=factory)))

    rows = []
    for benchmark in runner.trace_names():
        rows.append([benchmark] + [run.result_for(benchmark).mpki for _, run in columns])
    rows.append(["AVERAGE"] + [run.average_mpki for _, run in columns])
    rows.append(["storage (Kbits)"] + [round(run.storage_bits / 1024, 1) for _, run in columns])

    print()
    print(format_table(
        ["benchmark"] + [name for name, _ in columns],
        rows,
        title="Predictor shoot-out (MPKI per benchmark)",
    ))
    print()
    print("Reading guide: every generation narrows the gap, and the IMLI")
    print("components recover most of what remains on the nested-loop")
    print("benchmarks (SPEC2K6-04, SPEC2K6-12, MM-4) for a few hundred bytes.")


if __name__ == "__main__":
    main()
