"""Predictor shoot-out: from 2-bit counters to TAGE-GSC + IMLI.

Runs the whole predictor hierarchy implemented by the library over a few
synthetic benchmarks and prints one MPKI column per predictor, together with
its storage budget -- a condensed view of thirty years of branch prediction.

The historical baselines are not part of the composite registry, so this
example also shows the extension hook: they are registered as **builders**
on a scoped :class:`repro.Registry` and then referenced by name, exactly
like the paper's configurations.

Run with::

    python examples/predictor_shootout.py
"""

from __future__ import annotations

from repro import Experiment, PredictorSpec, Registry
from repro.analysis.tables import format_table
from repro.predictors import (
    BimodalPredictor,
    GSharePredictor,
    PerceptronPredictor,
    TAGEPredictor,
)
from repro.predictors.tage import TAGEConfig

BENCHMARKS = ["SPEC2K6-00", "SPEC2K6-04", "SPEC2K6-12", "SERVER-01", "MM-4"]

registry = Registry.with_defaults()


@registry.register_configuration("bimodal")
def _bimodal(profile, entries=4096):
    return BimodalPredictor(entries=entries)


@registry.register_configuration("gshare")
def _gshare(profile, entries=4096, history_length=12):
    return GSharePredictor(entries=entries, history_length=history_length)


@registry.register_configuration("perceptron")
def _perceptron(profile, entries=256, history_length=24):
    return PerceptronPredictor(entries=entries, history_length=history_length)


@registry.register_configuration("tage")
def _tage(profile):
    return TAGEPredictor(TAGEConfig(num_tables=6, table_entries=256,
                                    base_entries=1024, max_history=80))


#: One spec per shoot-out column, oldest predictor first.  The registered
#: builders and the paper's composite configurations are referenced the
#: same way.
SPECS = [
    PredictorSpec.from_named(name, profile="small")
    for name in (
        "bimodal", "gshare", "perceptron", "tage",
        "gehl", "tage-gsc", "tage-gsc+imli", "tage-gsc+imli+l",
    )
]


def main() -> None:
    print(f"Simulating {len(SPECS)} predictors over {len(BENCHMARKS)} benchmarks ...")
    experiment = Experiment(
        SPECS,
        suite="cbp4like",
        benchmarks=BENCHMARKS,
        length=3000,
        profile="small",
        registry=registry,
    )
    results = experiment.run()

    labels = results.labels()
    rows = results.mpki_table()
    rows.append(
        ["storage (Kbits)"]
        + [round(results.storage_bits(label) / 1024, 1) for label in labels]
    )
    print()
    print(format_table(
        ["benchmark"] + labels,
        rows,
        title="Predictor shoot-out (MPKI per benchmark)",
    ))
    print()
    print("Reading guide: every generation narrows the gap, and the IMLI")
    print("components recover most of what remains on the nested-loop")
    print("benchmarks (SPEC2K6-04, SPEC2K6-12, MM-4) for a few hundred bytes.")


if __name__ == "__main__":
    main()
