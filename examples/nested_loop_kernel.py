"""The Figure-1 scenario: branches inside a two-dimensional loop nest.

This example builds the two loop-nest kernels the paper analyses --
same-iteration correlation (``Out[N][M] == Out[N-1][M]``) and wormhole
correlation (``Out[N][M] == Out[N-1][M-1]``) -- and shows:

* how the IMLI counter tracks the inner-most loop iteration at fetch time;
* which predictor component captures which kernel: IMLI-SIC for the first,
  IMLI-OH (and the wormhole predictor) for the second;
* that the wormhole predictor goes blind when the trip count varies while
  IMLI-SIC does not (Section 4.2.2 of the paper).

Run with::

    python examples/nested_loop_kernel.py
"""

from __future__ import annotations

from repro import Experiment, PredictorSpec
from repro.analysis.tables import format_table
from repro.core import IMLIState
from repro.trace import Trace
from repro.trace.stats import compute_statistics
from repro.workloads import KernelEmitter, SameIterationKernel, WormholeDiagonalKernel


def build_trace(kernel, rounds: int, name: str) -> Trace:
    emitter = KernelEmitter(base_pc=0x8000, instruction_gap=9)
    for _ in range(rounds):
        kernel.emit_round(emitter)
    return Trace(name=name, records=emitter.drain())


def show_imli_counter(trace: Trace) -> None:
    """Print the IMLI counter for the first few inner-loop iterations."""
    imli = IMLIState()
    samples = []
    for record in trace.records[:60]:
        if record.is_conditional:
            samples.append((hex(record.pc), "backward" if record.is_backward else "forward",
                            "T" if record.taken else "N", imli.count))
            imli.update(record)
    print(format_table(
        ["pc", "kind", "outcome", "IMLI count at fetch"],
        samples[:18],
        title="IMLI counter tracking (first inner-loop iterations)",
    ))
    print()


def evaluate(trace: Trace, configurations) -> None:
    """Run the configurations over one hand-built trace (no suite needed)."""
    stats = compute_statistics(trace)
    print(f"trace {trace.name}: {stats.conditional_branches} conditional branches, "
          f"mean inner-loop trip count {stats.mean_inner_loop_trip_count:.1f}")
    specs = [PredictorSpec.from_named(c, profile="small") for c in configurations]
    results = Experiment(specs, traces=[trace], profile="small").run()
    rows = []
    for spec in specs:
        result = results.run_for(spec.label).result_for(trace.name)
        rows.append((spec.label, result.mpki, f"{100 * result.accuracy:.1f} %"))
    print(format_table(["configuration", "MPKI", "accuracy"], rows))
    print()


def main() -> None:
    same_iteration = build_trace(
        SameIterationKernel(seed=1, max_trip=32, outer_iterations=20,
                            variable_trip=True, noise_branches=1),
        rounds=3, name="same-iteration (variable trip count)",
    )
    wormhole = build_trace(
        WormholeDiagonalKernel(seed=2, trip=24, outer_iterations=40, noise_branches=1),
        rounds=2, name="wormhole diagonal (constant trip count)",
    )

    show_imli_counter(same_iteration)

    print("=== Same-iteration correlation: IMLI-SIC captures it, WH cannot ===")
    evaluate(same_iteration, ["tage-gsc", "tage-gsc+sic", "tage-gsc+wh", "tage-gsc+imli"])

    print("=== Wormhole correlation: IMLI-OH and WH both capture it ===")
    evaluate(wormhole, ["gehl", "gehl+oh", "gehl+wh", "gehl+imli"])


if __name__ == "__main__":
    main()
