"""Quick start: measure the benefit of the IMLI components on one suite.

This is the smallest end-to-end use of the library:

1. generate a synthetic CBP4-like benchmark suite (a subset, to stay fast);
2. run the TAGE-GSC base predictor and its IMLI-augmented version;
3. print per-benchmark MPKI and the average reduction.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.sim import SuiteRunner, mpki_reduction_percent
from repro.workloads import generate_suite


def main() -> None:
    benchmarks = ["SPEC2K6-00", "SPEC2K6-04", "SPEC2K6-12", "MM-4", "SERVER-01"]
    print(f"Generating {len(benchmarks)} synthetic benchmarks ...")
    traces = generate_suite(
        "cbp4like", target_conditional_branches=3000, benchmarks=benchmarks
    )

    runner = SuiteRunner(traces, profile="small")
    print("Simulating tage-gsc and tage-gsc+imli ...")
    base = runner.run("tage-gsc")
    imli = runner.run("tage-gsc+imli")

    rows = []
    for name in runner.trace_names():
        base_mpki = base.result_for(name).mpki
        imli_mpki = imli.result_for(name).mpki
        rows.append((name, base_mpki, imli_mpki, base_mpki - imli_mpki))
    rows.append(("AVERAGE", base.average_mpki, imli.average_mpki,
                 base.average_mpki - imli.average_mpki))

    print()
    print(format_table(
        ["benchmark", "tage-gsc MPKI", "tage-gsc+imli MPKI", "reduction"],
        rows,
        title="IMLI components on TAGE-GSC (quick start)",
    ))
    print()
    reduction = mpki_reduction_percent(base.average_mpki, imli.average_mpki)
    print(f"Average MPKI reduction from the IMLI components: {reduction:.1f} %")
    print("(the paper reports 6.8 % on the CBP4 traces; the synthetic suite is")
    print(" harder on average but shows the same concentration of the benefit")
    print(" on the nested-loop benchmarks)")


if __name__ == "__main__":
    main()
