"""Quick start: measure the benefit of the IMLI components on one suite.

This is the smallest end-to-end use of the declarative API:

1. describe the two predictors as :class:`repro.PredictorSpec` objects;
2. run them over a synthetic CBP4-like subset with one
   :class:`repro.Experiment` (the base predictor is the baseline);
3. print per-benchmark MPKI, the deltas, and the average reduction.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Experiment, PredictorSpec
from repro.sim import mpki_reduction_percent


def main() -> None:
    benchmarks = ["SPEC2K6-00", "SPEC2K6-04", "SPEC2K6-12", "MM-4", "SERVER-01"]
    specs = [
        PredictorSpec.from_named("tage-gsc", profile="small"),
        PredictorSpec.from_named("tage-gsc+imli", profile="small"),
    ]
    print(f"Simulating {[spec.label for spec in specs]} "
          f"on {len(benchmarks)} synthetic benchmarks ...")
    experiment = Experiment(
        specs,
        suite="cbp4like",
        benchmarks=benchmarks,
        length=3000,
        profile="small",
    )
    results = experiment.run(baseline="tage-gsc")

    print()
    print(results.report(title="IMLI components on TAGE-GSC (quick start)"))
    print()
    reduction = mpki_reduction_percent(
        results.average_mpki("tage-gsc"), results.average_mpki("tage-gsc+imli")
    )
    print(f"Average MPKI reduction from the IMLI components: {reduction:.1f} %")
    print("(the paper reports 6.8 % on the CBP4 traces; the synthetic suite is")
    print(" harder on average but shows the same concentration of the benefit")
    print(" on the nested-loop benchmarks)")


if __name__ == "__main__":
    main()
