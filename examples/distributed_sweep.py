"""Distributed sweep demo: coordinator + two workers in one process.

The production topology (see ``docs/DISTRIBUTED.md``) runs ``repro
serve`` on one host and ``repro worker`` on many; this example runs the
identical components -- real TCP sockets, the real wire protocol --
inside a single process so it works anywhere:

1. start a :class:`repro.dist.Coordinator` on an ephemeral localhost
   port, backed by a throwaway result store;
2. start two :class:`repro.dist.Worker` threads that lease cells,
   simulate them and upload results;
3. run an :class:`repro.Experiment` through the ``dist`` backend, and
   verify the result set is bit-identical to an in-process serial run;
4. resubmit the same sweep: every cell now comes out of the store and
   no worker simulates anything.

Run with::

    python examples/distributed_sweep.py
"""

from __future__ import annotations

import tempfile
import threading

from repro import Experiment, PredictorSpec
from repro.common.progress import ProgressPrinter
from repro.dist import Coordinator, DistBackend, Worker
from repro.store import ResultStore


def main() -> None:
    benchmarks = ["SPEC2K6-00", "SPEC2K6-04", "SPEC2K6-12"]
    specs = [
        PredictorSpec.from_named("tage-gsc", profile="small"),
        PredictorSpec.from_named("tage-gsc+imli", profile="small"),
    ]
    workload = dict(
        suite="cbp4like", benchmarks=benchmarks, length=2000, profile="small"
    )

    print("Reference run (serial, in-process) ...")
    serial = Experiment(specs, **workload).run(baseline="tage-gsc")

    with tempfile.TemporaryDirectory(prefix="repro-dist-") as store_dir:
        store = ResultStore(store_dir)
        coordinator = Coordinator(store=store, log=lambda m: print(f"  [coord] {m}"))
        host, port = coordinator.start()

        workers = [Worker(host, port, name=f"demo-worker-{i}") for i in range(2)]
        threads = [threading.Thread(target=w.run, daemon=True) for w in workers]
        for thread in threads:
            thread.start()

        print(f"\nDistributed run (coordinator on {host}:{port}, 2 workers) ...")
        distributed = Experiment(
            specs, **workload,
            backend=DistBackend((host, port)),
            progress=ProgressPrinter("dist-sweep", min_interval=0.2),
        ).run(baseline="tage-gsc")

        assert distributed.to_json() == serial.to_json(), "results must match!"
        print("distributed result set is BIT-IDENTICAL to the serial run")

        print("\nResubmitting the same sweep (store-backed resume) ...")
        job = coordinator.submit(specs, Experiment(specs, **workload).traces())
        job.wait(timeout=30)
        print(f"job settled with {job.done}/{job.total} cells "
              "straight from the store -- no new simulation")

        coordinator.shutdown()
        for thread in threads:
            thread.join(timeout=10)
        print("cells simulated per worker:",
              {w.name: w.completed for w in workers})

    print()
    print(distributed.report(title="IMLI on TAGE-GSC (distributed sweep demo)"))


if __name__ == "__main__":
    main()
