"""Legacy entry point; all metadata lives in pyproject.toml."""
from setuptools import setup

setup()
