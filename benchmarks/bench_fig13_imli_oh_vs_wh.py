"""Figure 13: IMLI-OH versus the wormhole predictor on top of GEHL.

Paper reference: both side mechanisms recover the outer-iteration
correlation of SPEC2K6-12, MM-4, CLIENT02 and MM07; IMLI-OH additionally
gives small gains on a few IMLI-SIC benchmarks.
"""

from __future__ import annotations

from benchmarks._harness import run_and_report

WORMHOLE_BENCHMARKS = {"SPEC2K6-12", "MM-4", "CLIENT02", "MM07"}


def test_fig13_imli_oh_vs_wormhole(benchmark, runners):
    result = run_and_report("fig13", runners, benchmark)
    grouped = result.measured["per_benchmark_reduction"]
    present = WORMHOLE_BENCHMARKS & set(grouped)
    for name in present:
        # Both mechanisms must improve the wormhole-correlated benchmarks.
        assert grouped[name]["imli-oh"] > 0
        assert grouped[name]["wormhole"] > 0
