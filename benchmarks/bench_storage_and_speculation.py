"""Section 4.4: storage budget and speculative-state cost of the IMLI components.

Paper reference: the two IMLI components add 708 bytes of storage (384-byte
IMLI-SIC table, 128-byte outer-history table, 192-byte IMLI-OH prediction
table, 4 bytes of PIPE vector + IMLI counter) and their speculative state is
a 10-bit counter plus a 16-bit PIPE vector per checkpoint -- no associative
search of the in-flight branch window, unlike local history and WH.
"""

from __future__ import annotations

from benchmarks._harness import run_and_report


def test_storage_and_speculative_state(benchmark, runners):
    result = run_and_report("storage-speculation", runners, benchmark)
    imli_cost = result.measured["imli_cost_bits"]
    storage = result.measured["storage"]
    speculation = result.measured["speculation"]
    # IMLI adds a small fraction of the base predictor's storage.
    assert imli_cost["total"] / 8 < 0.2 * storage["tage-gsc"] * 128  # Kbits -> bytes
    # IMLI needs no in-flight window search; local history and WH do.
    assert speculation["tage-gsc+imli"]["requires_inflight_window_search"] is False
    assert speculation["tage-gsc+l"]["requires_inflight_window_search"] is True
    assert speculation["tage-gsc+wh"]["requires_inflight_window_search"] is True
