"""Section 5: TAGE-SC-L enhanced with the IMLI components (the "record").

Paper reference: adding the IMLI components to the 256 Kbit TAGE-SC-L (the
CBP4 winner) lowers its CBP4 misprediction rate from 2.365 to 2.228 MPKI
(-5.8 %).
"""

from __future__ import annotations

from benchmarks._harness import run_and_report


def test_record_tage_sc_l_with_imli(benchmark, runners):
    result = run_and_report("record", runners, benchmark)
    for suite_values in result.measured["average_mpki"].values():
        assert suite_values["tage-sc-l+imli"] <= suite_values["tage-sc-l"] * 1.02
    reductions = result.measured["reduction_percent"]
    assert any(value > 0 for value in reductions.values())
