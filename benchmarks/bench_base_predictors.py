"""Section 3.2: base predictor accuracy (TAGE-GSC and GEHL).

Paper reference: TAGE-GSC achieves 2.473 / 3.902 MPKI and GEHL 2.864 /
4.243 MPKI on the CBP4 / CBP3 trace sets.  The synthetic suites are harder
on average (they intentionally oversample hard branches, see DESIGN.md), so
absolute values differ; the regenerated table reports the equivalent rows.
"""

from __future__ import annotations

from benchmarks._harness import run_and_report


def test_base_predictor_accuracy(benchmark, runners):
    result = run_and_report("base-predictors", runners, benchmark)
    averages = result.measured["average_mpki"]
    for suite_values in averages.values():
        assert suite_values["tage-gsc"] > 0
        assert suite_values["gehl"] > 0
