"""Shared infrastructure for the benchmark harness (helpers).

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  The traces and the per-configuration
simulation results are shared across benchmark files through session-scoped
fixtures and the memoising :class:`~repro.sim.runner.SuiteRunner`, so each
predictor configuration is simulated exactly once per pytest session.

Environment knobs (all optional):

``REPRO_BENCH_LENGTH``
    Conditional branches per benchmark trace (default 2500).  Larger values
    sharpen the numbers at the cost of run time.
``REPRO_BENCH_PROFILE``
    Predictor size profile, ``"small"`` (default) or ``"default"``.
``REPRO_BENCH_SUITE_SUBSET``
    Comma-separated benchmark names to restrict the suites to (mainly for
    quick interactive runs).

Reports are printed and also written to ``benchmarks/results/<id>.txt``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.analysis.experiments import ExperimentResult, run_experiment
from repro.sim.runner import SuiteRunner
from repro.workloads.suites import generate_suite

RESULTS_DIR = Path(__file__).parent / "results"


def bench_length() -> int:
    """Conditional branches per benchmark trace."""
    return int(os.environ.get("REPRO_BENCH_LENGTH", "2500"))


def bench_profile() -> str:
    """Predictor size profile used by the harness."""
    return os.environ.get("REPRO_BENCH_PROFILE", "small")


def _subset() -> Optional[Sequence[str]]:
    raw = os.environ.get("REPRO_BENCH_SUITE_SUBSET", "").strip()
    if not raw:
        return None
    return [name.strip() for name in raw.split(",") if name.strip()]


def build_runners() -> Dict[str, SuiteRunner]:
    """One memoising runner per synthetic suite (CBP4-like and CBP3-like)."""
    subset = _subset()
    runners_by_suite: Dict[str, SuiteRunner] = {}
    for suite in ("cbp4like", "cbp3like"):
        traces = generate_suite(
            suite,
            target_conditional_branches=bench_length(),
            benchmarks=subset,
        )
        if not traces:
            raise RuntimeError(
                f"REPRO_BENCH_SUITE_SUBSET selected no benchmarks from {suite}"
            )
        runners_by_suite[suite] = SuiteRunner(traces, profile=bench_profile())
    return runners_by_suite


def run_and_report(experiment_id: str, runners, benchmark) -> ExperimentResult:
    """Run one registered experiment under the pytest-benchmark timer.

    The experiment executes exactly once (``rounds=1``); repeated timing
    would re-simulate nothing thanks to the runner cache and would only
    distort the reported duration.  The resulting report is printed and
    persisted under ``benchmarks/results/``.
    """
    result = benchmark.pedantic(
        run_experiment, args=(experiment_id, runners), rounds=1, iterations=1
    )
    report = result.report()
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(report + "\n", encoding="utf-8")
    print()
    print(report)
    return result
