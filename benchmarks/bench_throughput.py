"""Simulator throughput: predictions per second for the main configurations.

Not a paper experiment -- this benchmark tracks the speed of the pure-Python
trace-driven simulator itself so that regressions in the hot prediction path
are visible in pytest-benchmark's timing output.  Alongside the per-
configuration timings it tracks the batched sweep engine: an 8-spec grid
driven through ``simulate_many`` in one trace traversal.

Run as a script for machine-readable numbers (no pytest required)::

    PYTHONPATH=src python benchmarks/bench_throughput.py --json

which prints the same JSON document ``check_regression.py`` writes (the
CI gate and ``--write-baseline`` live there).
"""

from __future__ import annotations

import pytest

try:
    from benchmarks._harness import bench_profile
    from benchmarks.check_regression import SWEEP_BASE, SWEEP_DELAYS
except ModuleNotFoundError:  # run as a script: benchmarks/ is sys.path[0]
    from _harness import bench_profile
    from check_regression import SWEEP_BASE, SWEEP_DELAYS

from repro.api.specs import PredictorSpec
from repro.predictors.composites import build_named
from repro.sim.engine import simulate, simulate_many
from repro.workloads.suites import generate_benchmark, get_benchmark

CONFIGURATIONS = ["bimodal-baseline", "tage-gsc", "tage-gsc+imli", "gehl+imli"]


def _trace():
    return generate_benchmark(
        get_benchmark("cbp4like", "SPEC2K6-12"), target_conditional_branches=1500
    )


def _build(configuration):
    if configuration == "bimodal-baseline":
        from repro.predictors.simple import BimodalPredictor

        return BimodalPredictor()
    return build_named(configuration, profile=bench_profile())


def _sweep_predictors():
    base = PredictorSpec.from_named(SWEEP_BASE, profile=bench_profile())
    return [spec.build() for spec in base.sweep(oh_update_delay=SWEEP_DELAYS)]


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
def test_prediction_throughput(benchmark, configuration):
    trace = _trace()

    def run_once():
        return simulate(_build(configuration), trace)

    result = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert result.conditional_branches == trace.conditional_count


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
def test_fast_path_bit_identical(configuration):
    """The columnar fast path must match the reference path bit-for-bit."""
    trace = _trace()
    fast = simulate(_build(configuration), trace, use_fast_path=True)
    reference = simulate(_build(configuration), trace, use_fast_path=False)
    assert fast.mispredictions == reference.mispredictions
    assert fast.conditional_branches == reference.conditional_branches
    assert fast.instructions == reference.instructions
    assert fast.storage_bits == reference.storage_bits


def test_sweep_throughput(benchmark):
    """Batched grid: all sweep specs in one traversal (specs/s tracked)."""
    trace = _trace()

    def run_once():
        return simulate_many(_sweep_predictors(), trace)

    results = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert len(results) == len(SWEEP_DELAYS)
    assert all(
        result.conditional_branches == trace.conditional_count
        for result in results
    )


def test_batched_sweep_bit_identical():
    """The batched grid must match per-cell simulation bit-for-bit."""
    trace = _trace()
    batched = simulate_many(_sweep_predictors(), trace)
    serial = [simulate(predictor, trace) for predictor in _sweep_predictors()]
    for ours, theirs in zip(batched, serial):
        assert ours.mispredictions == theirs.mispredictions
        assert ours.conditional_branches == theirs.conditional_branches
        assert ours.instructions == theirs.instructions
        assert ours.storage_bits == theirs.storage_bits


def main(argv=None) -> int:
    """Script entry: print the throughput document (optionally as JSON)."""
    import argparse
    import json
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    import check_regression

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", action="store_true",
        help="machine-readable output: one JSON document on stdout",
    )
    parser.add_argument(
        "--rounds", type=int, default=3,
        help="timing rounds per metric, best-of (default 3)",
    )
    args = parser.parse_args(argv)
    if args.json:
        return check_regression.main(["--rounds", str(args.rounds), "--output", "-"])
    return check_regression.main(["--rounds", str(args.rounds)])


if __name__ == "__main__":
    import sys

    sys.exit(main())
