"""Simulator throughput: predictions per second for the main configurations.

Not a paper experiment -- this benchmark tracks the speed of the pure-Python
trace-driven simulator itself so that regressions in the hot prediction path
are visible in pytest-benchmark's timing output.
"""

from __future__ import annotations

import pytest

from benchmarks._harness import bench_profile

from repro.predictors.composites import build_named
from repro.sim.engine import simulate
from repro.workloads.suites import generate_benchmark, get_benchmark

CONFIGURATIONS = ["bimodal-baseline", "tage-gsc", "tage-gsc+imli", "gehl+imli"]


def _trace():
    return generate_benchmark(
        get_benchmark("cbp4like", "SPEC2K6-12"), target_conditional_branches=1500
    )


def _build(configuration):
    if configuration == "bimodal-baseline":
        from repro.predictors.simple import BimodalPredictor

        return BimodalPredictor()
    return build_named(configuration, profile=bench_profile())


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
def test_prediction_throughput(benchmark, configuration):
    trace = _trace()

    def run_once():
        return simulate(_build(configuration), trace)

    result = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert result.conditional_branches == trace.conditional_count


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
def test_fast_path_bit_identical(configuration):
    """The columnar fast path must match the reference path bit-for-bit."""
    trace = _trace()
    fast = simulate(_build(configuration), trace, use_fast_path=True)
    reference = simulate(_build(configuration), trace, use_fast_path=False)
    assert fast.mispredictions == reference.mispredictions
    assert fast.conditional_branches == reference.conditional_branches
    assert fast.instructions == reference.instructions
    assert fast.storage_bits == reference.storage_bits
