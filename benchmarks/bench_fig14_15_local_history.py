"""Figures 14 and 15: benefit of local-history components with and without IMLI.

Paper reference: adding local history + loop predictor to the IMLI-augmented
predictors buys less than adding them to the bases (TAGE-GSC: 0.108 -> 0.087
MPKI on CBP4 and 0.232 -> 0.094 on CBP3; GEHL similar), because the IMLI
components already capture part of the same correlation.
"""

from __future__ import annotations

from benchmarks._harness import run_and_report


def _check_local_benefit_shrinks(result):
    local_benefit = result.measured["local_benefit"]
    for suite in ("cbp4like", "cbp3like"):
        without_imli = local_benefit.get(f"local benefit without IMLI ({suite})")
        with_imli = local_benefit.get(f"local benefit with IMLI ({suite})")
        if without_imli is None or with_imli is None:
            continue
        assert with_imli <= without_imli + 0.1


def test_fig14_local_history_on_tage(benchmark, runners):
    result = run_and_report("fig14", runners, benchmark)
    _check_local_benefit_shrinks(result)


def test_fig15_local_history_on_gehl(benchmark, runners):
    result = run_and_report("fig15", runners, benchmark)
    _check_local_benefit_shrinks(result)
