"""Table 2: average MPKI for GEHL-based predictors (base, +L, +I, +I+L).

Paper reference (CBP4 / CBP3): 2.864/4.243, 2.693/3.924, 2.694/3.958,
2.562/3.827 MPKI at 204 / 256 / 209 / 261 Kbits.
"""

from __future__ import annotations

from benchmarks._harness import run_and_report


def test_table2_gehl_configurations(benchmark, runners):
    result = run_and_report("table2", runners, benchmark)
    storage = result.measured["storage_kbits"]
    assert storage["gehl"] < storage["gehl+imli"] < storage["gehl+l"]
    for suite_values in result.measured["average_mpki"].values():
        assert suite_values["gehl+imli"] < suite_values["gehl"]
        assert suite_values["gehl+l"] < suite_values["gehl"]
        assert suite_values["gehl+imli+l"] <= min(
            suite_values["gehl+imli"], suite_values["gehl+l"]
        ) + 0.15
