"""Throughput regression gate for CI.

Measures predictions per second for the headline configurations (the same
four that ``bench_throughput.py`` tracks) on the SPEC2K6-12 trace, writes
the numbers as JSON, and -- when given a baseline file -- fails if any
configuration dropped by more than the allowed fraction.  The committed
baseline (``benchmarks/baselines/BENCH_baseline.json``) is seeded from the
PR 1 numbers in ``docs/PERFORMANCE.md``.

Usage::

    # CI gate: measure, write BENCH_pr.json, compare against the baseline
    python benchmarks/check_regression.py \
        --output BENCH_pr.json \
        --baseline benchmarks/baselines/BENCH_baseline.json

    # refresh the committed baseline after an intentional perf change
    python benchmarks/check_regression.py \
        --write-baseline benchmarks/baselines/BENCH_baseline.json

    # sanity check: with the fast engine disabled the gate must fail
    python benchmarks/check_regression.py --no-fast-path \
        --baseline benchmarks/baselines/BENCH_baseline.json

Environment overrides: ``REPRO_BENCH_MAX_DROP`` (fraction, default 0.25)
and ``REPRO_BENCH_ROUNDS`` mirror ``--max-drop`` / ``--rounds`` for CI
without editing the workflow file.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, Optional

from repro.predictors.composites import build_named
from repro.sim.engine import simulate
from repro.workloads.suites import generate_benchmark, get_benchmark

#: Headline configurations, matching benchmarks/bench_throughput.py.
CONFIGURATIONS = ["bimodal-baseline", "tage-gsc", "tage-gsc+imli", "gehl+imli"]

#: Workload matching the committed baseline (docs/PERFORMANCE.md):
#: SPEC2K6-12, 1500 conditional branches, default size profile.
SUITE = "cbp4like"
BENCHMARK = "SPEC2K6-12"
LENGTH = 1500
PROFILE = "default"


def _build(configuration: str):
    if configuration == "bimodal-baseline":
        from repro.predictors.simple import BimodalPredictor

        return BimodalPredictor()
    return build_named(configuration, profile=PROFILE)


def measure(rounds: int, use_fast_path: Optional[bool]) -> Dict[str, float]:
    """Best-of-``rounds`` predictions/s per configuration.

    ``use_fast_path=None`` lets the engine pick the fast path (the
    production default); ``False`` forces the reference path, which is how
    the gate is shown to actually fire.
    """
    trace = generate_benchmark(
        get_benchmark(SUITE, BENCHMARK), target_conditional_branches=LENGTH
    )
    throughput: Dict[str, float] = {}
    for configuration in CONFIGURATIONS:
        best = 0.0
        for _ in range(rounds):
            predictor = _build(configuration)
            start = time.perf_counter()
            result = simulate(predictor, trace, use_fast_path=use_fast_path)
            elapsed = time.perf_counter() - start
            if result.conditional_branches != trace.conditional_count:
                raise RuntimeError(
                    f"{configuration}: simulated "
                    f"{result.conditional_branches} != {trace.conditional_count}"
                )
            best = max(best, result.conditional_branches / elapsed)
        throughput[configuration] = best
    return throughput


def compare(
    current: Dict[str, float], baseline: Dict[str, float], max_drop: float
) -> int:
    """Print the comparison table; return the number of regressions."""
    regressions = 0
    print(f"{'configuration':<20} {'baseline':>12} {'current':>12} {'ratio':>8}")
    for configuration, reference in baseline.items():
        measured = current.get(configuration)
        if measured is None:
            print(f"{configuration:<20} {reference:>12.0f} {'missing':>12}")
            regressions += 1
            continue
        ratio = measured / reference
        verdict = ""
        if ratio < 1.0 - max_drop:
            verdict = f"  REGRESSION (> {max_drop:.0%} drop)"
            regressions += 1
        print(
            f"{configuration:<20} {reference:>12.0f} {measured:>12.0f} "
            f"{ratio:>7.2f}x{verdict}"
        )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the measured numbers as JSON (the CI artifact)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline JSON to gate against (no comparison when omitted)",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="write the measured numbers as a new baseline file and exit",
    )
    parser.add_argument(
        "--max-drop",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_MAX_DROP", "0.25")),
        help="maximum tolerated fractional drop vs the baseline "
             "(default 0.25, i.e. fail below 75%% of baseline)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=int(os.environ.get("REPRO_BENCH_ROUNDS", "3")),
        help="timing rounds per configuration, best-of (default 3)",
    )
    parser.add_argument(
        "--no-fast-path", action="store_true",
        help="force the reference simulation path (the gate must then fail)",
    )
    args = parser.parse_args(argv)

    throughput = measure(args.rounds, False if args.no_fast_path else None)
    document = {
        "meta": {
            "suite": SUITE,
            "benchmark": BENCHMARK,
            "length": LENGTH,
            "profile": PROFILE,
            "rounds": args.rounds,
            "fast_path": not args.no_fast_path,
            "python": platform.python_version(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        },
        "predictions_per_second": {
            name: round(value, 1) for name, value in throughput.items()
        },
    }
    for destination in (args.output, args.write_baseline):
        if destination:
            Path(destination).parent.mkdir(parents=True, exist_ok=True)
            Path(destination).write_text(
                json.dumps(document, indent=2) + "\n", encoding="utf-8"
            )
            print(f"wrote {destination}", file=sys.stderr)
    if args.write_baseline:
        return 0
    if args.baseline is None:
        for name, value in throughput.items():
            print(f"{name:<20} {value:>12.0f} predictions/s")
        return 0

    baseline_doc = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
    baseline = baseline_doc["predictions_per_second"]
    regressions = compare(document["predictions_per_second"], baseline, args.max_drop)
    if regressions:
        print(
            f"FAIL: {regressions} configuration(s) regressed more than "
            f"{args.max_drop:.0%} vs {args.baseline}",
            file=sys.stderr,
        )
        print(
            "If the change is an intentional trade-off, refresh the baseline "
            "with --write-baseline (see docs/PERFORMANCE.md).",
            file=sys.stderr,
        )
        return 1
    print(f"OK: all configurations within {args.max_drop:.0%} of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
