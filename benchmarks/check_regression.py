"""Throughput regression gate for CI.

Measures predictions per second for the headline configurations (the same
four that ``bench_throughput.py`` tracks) on the SPEC2K6-12 trace, the
batched-sweep specs/s, the ``ingest_trace`` pipeline's branches/s and the
chunked-layout streaming-simulation branches/s, writes the numbers as
JSON, and -- when given a baseline file -- fails if any gated metric
dropped by more than the allowed fraction.  The committed
baseline (``benchmarks/baselines/BENCH_baseline.json``) is seeded from the
PR 1 numbers in ``docs/PERFORMANCE.md``.

Usage::

    # CI gate: measure, write BENCH_pr.json, compare against the baseline
    python benchmarks/check_regression.py \
        --output BENCH_pr.json \
        --baseline benchmarks/baselines/BENCH_baseline.json

    # refresh the committed baseline after an intentional perf change
    python benchmarks/check_regression.py \
        --write-baseline benchmarks/baselines/BENCH_baseline.json

    # sanity check: with the fast engine disabled the gate must fail
    python benchmarks/check_regression.py --no-fast-path \
        --baseline benchmarks/baselines/BENCH_baseline.json

Environment overrides: ``REPRO_BENCH_MAX_DROP`` (fraction, default 0.25)
and ``REPRO_BENCH_ROUNDS`` mirror ``--max-drop`` / ``--rounds`` for CI
without editing the workflow file.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, Optional

from repro.predictors.composites import build_named
from repro.sim.engine import simulate
from repro.workloads.suites import generate_benchmark, get_benchmark

#: Headline configurations, matching benchmarks/bench_throughput.py.
CONFIGURATIONS = ["bimodal-baseline", "tage-gsc", "tage-gsc+imli", "gehl+imli"]

#: Workload matching the committed baseline (docs/PERFORMANCE.md):
#: SPEC2K6-12, 1500 conditional branches, default size profile.
SUITE = "cbp4like"
BENCHMARK = "SPEC2K6-12"
LENGTH = 1500
PROFILE = "default"

#: The batched-grid workload behind the ``sweep_specs_per_s`` metric: an
#: 8-spec ``oh_update_delay`` grid over the same trace, driven through
#: ``simulate_many`` in one traversal (the batched sweep engine's hot
#: path).  The serial figure replays the same grid one ``simulate`` call
#: per spec, the pre-batching layout.
SWEEP_BASE = "tage-gsc+oh"
SWEEP_DELAYS = [0, 1, 3, 7, 15, 31, 63, 127]

#: The ingest workload behind ``ingest_branches_per_s`` /
#: ``streaming_branches_per_s``: a synthesized CBP-style text trace run
#: through the full ``ingest_trace`` pipeline (reader -> gatekeeper ->
#: chunked writer), then ``tage-gsc`` simulated over the chunked layout
#: (streaming, several chunk boundaries).
INGEST_LINES = 20000
INGEST_CHUNK_BRANCHES = 600
STREAMING_CONFIGURATION = "tage-gsc"


def _build(configuration: str):
    if configuration == "bimodal-baseline":
        from repro.predictors.simple import BimodalPredictor

        return BimodalPredictor()
    return build_named(configuration, profile=PROFILE)


def _sweep_predictors():
    from repro.api.specs import PredictorSpec

    base = PredictorSpec.from_named(SWEEP_BASE, profile=PROFILE)
    return [spec.build() for spec in base.sweep(oh_update_delay=SWEEP_DELAYS)]


def measure_sweep(
    rounds: int, use_fast_path: Optional[bool] = None
) -> Dict[str, float]:
    """Best-of-``rounds`` specs/s for the batched grid (and serially).

    ``sweep_specs_per_s`` (the gated metric) drives all grid specs through
    one :func:`~repro.sim.engine.simulate_many` traversal with shared-core
    grouping on (the default -- the whole grid shares one TAGE core);
    ``sweep_specs_per_s_unshared`` repeats it with ``share_cores=False``,
    i.e. PR 5's batched path, so the gate pins the shared-core win
    itself; ``sweep_specs_per_s_serial`` replays the same grid per-cell,
    the pre-batching layout.  Fresh predictors per round, like
    :func:`measure`, and the same ``use_fast_path`` semantics (``False``
    = reference path, so ``--no-fast-path`` degrades this metric too).
    """
    from repro.sim.engine import simulate_many

    trace = generate_benchmark(
        get_benchmark(SUITE, BENCHMARK), target_conditional_branches=LENGTH
    )
    best_batched = 0.0
    best_unshared = 0.0
    best_serial = 0.0
    for _ in range(rounds):
        predictors = _sweep_predictors()
        start = time.perf_counter()
        results = simulate_many(predictors, trace, use_fast_path=use_fast_path)
        elapsed = time.perf_counter() - start
        if any(r.conditional_branches != trace.conditional_count for r in results):
            raise RuntimeError("batched sweep simulated a partial trace")
        best_batched = max(best_batched, len(predictors) / elapsed)

        predictors = _sweep_predictors()
        start = time.perf_counter()
        simulate_many(
            predictors, trace, use_fast_path=use_fast_path, share_cores=False
        )
        elapsed = time.perf_counter() - start
        best_unshared = max(best_unshared, len(predictors) / elapsed)

        predictors = _sweep_predictors()
        start = time.perf_counter()
        for predictor in predictors:
            simulate(predictor, trace, use_fast_path=use_fast_path)
        elapsed = time.perf_counter() - start
        best_serial = max(best_serial, len(predictors) / elapsed)
    return {
        "sweep_specs_per_s": best_batched,
        "sweep_specs_per_s_unshared": best_unshared,
        "sweep_specs_per_s_serial": best_serial,
    }


def measure_ingest(
    rounds: int, use_fast_path: Optional[bool] = None
) -> Dict[str, float]:
    """Best-of-``rounds`` ingest and streaming-simulation branches/s.

    ``ingest_branches_per_s`` times the full pipeline (CBP text reader ->
    gatekeeper -> chunked writer) over a synthesized ``INGEST_LINES``-line
    input; ``streaming_branches_per_s`` times ``STREAMING_CONFIGURATION``
    simulating the chunked layout (the per-chunk streaming path, several
    chunk boundaries per traversal).
    """
    import tempfile

    from repro.ingest import ingest_trace
    from repro.trace.chunked import load_chunked_trace, write_chunked_trace

    trace = generate_benchmark(
        get_benchmark(SUITE, BENCHMARK), target_conditional_branches=LENGTH
    )
    best_ingest = 0.0
    best_stream = 0.0
    with tempfile.TemporaryDirectory(prefix="repro-bench-ingest-") as scratch_name:
        scratch = Path(scratch_name)
        source = scratch / "external.cbp"
        with source.open("w", encoding="utf-8") as out:
            for i in range(INGEST_LINES):
                record = trace.record_at(i % len(trace))
                out.write(
                    f"{record.pc:#x} {int(record.taken)} {record.target:#x} "
                    f"{record.kind.value} {record.instruction_gap}\n"
                )
        for round_index in range(rounds):
            report = ingest_trace(
                source,
                scratch / f"round-{round_index}",
                reader="cbp",
                chunk_branches=INGEST_CHUNK_BRANCHES,
            )
            if report.records != INGEST_LINES:
                raise RuntimeError(
                    f"ingest converted {report.records} != {INGEST_LINES} records"
                )
            best_ingest = max(best_ingest, report.branches_per_second)

        streaming_dir = scratch / "streaming"
        write_chunked_trace(
            trace, streaming_dir, chunk_branches=INGEST_CHUNK_BRANCHES
        )
        streamed = load_chunked_trace(streaming_dir)
        for _ in range(rounds):
            predictor = _build(STREAMING_CONFIGURATION)
            start = time.perf_counter()
            result = simulate(predictor, streamed, use_fast_path=use_fast_path)
            elapsed = time.perf_counter() - start
            if result.conditional_branches != streamed.conditional_count:
                raise RuntimeError("streaming simulate covered a partial trace")
            best_stream = max(best_stream, result.conditional_branches / elapsed)
    return {
        "ingest_branches_per_s": best_ingest,
        "streaming_branches_per_s": best_stream,
    }


def measure(rounds: int, use_fast_path: Optional[bool]) -> Dict[str, float]:
    """Best-of-``rounds`` predictions/s per configuration.

    ``use_fast_path=None`` lets the engine pick the fast path (the
    production default); ``False`` forces the reference path, which is how
    the gate is shown to actually fire.
    """
    trace = generate_benchmark(
        get_benchmark(SUITE, BENCHMARK), target_conditional_branches=LENGTH
    )
    throughput: Dict[str, float] = {}
    for configuration in CONFIGURATIONS:
        best = 0.0
        for _ in range(rounds):
            predictor = _build(configuration)
            start = time.perf_counter()
            result = simulate(predictor, trace, use_fast_path=use_fast_path)
            elapsed = time.perf_counter() - start
            if result.conditional_branches != trace.conditional_count:
                raise RuntimeError(
                    f"{configuration}: simulated "
                    f"{result.conditional_branches} != {trace.conditional_count}"
                )
            best = max(best, result.conditional_branches / elapsed)
        throughput[configuration] = best
    return throughput


def _gate_metrics(document: Dict) -> Dict[str, float]:
    """Flatten one measurement document into the gated metric set.

    Per-configuration predictions/s plus the batched sweep throughput and
    the ingest / streaming-simulation branches/s.  Baselines written
    before a metric existed simply gate fewer metrics (``compare``
    iterates the baseline's keys).
    """
    metrics = dict(document.get("predictions_per_second", {}))
    sweep = document.get("sweep")
    if isinstance(sweep, dict) and "specs_per_second" in sweep:
        metrics["sweep_specs_per_s"] = sweep["specs_per_second"]
        if "specs_per_second_unshared" in sweep:
            metrics["sweep_specs_per_s_unshared"] = sweep[
                "specs_per_second_unshared"
            ]
    ingest = document.get("ingest")
    if isinstance(ingest, dict):
        for key in ("ingest_branches_per_s", "streaming_branches_per_s"):
            if key in ingest:
                metrics[key] = ingest[key]
    return metrics


def compare(
    current: Dict[str, float], baseline: Dict[str, float], max_drop: float
) -> int:
    """Print the comparison table; return the number of regressions."""
    regressions = 0
    print(f"{'configuration':<20} {'baseline':>12} {'current':>12} {'ratio':>8}")
    for configuration, reference in baseline.items():
        measured = current.get(configuration)
        if measured is None:
            print(f"{configuration:<20} {reference:>12.0f} {'missing':>12}")
            regressions += 1
            continue
        ratio = measured / reference
        verdict = ""
        if ratio < 1.0 - max_drop:
            verdict = f"  REGRESSION (> {max_drop:.0%} drop)"
            regressions += 1
        print(
            f"{configuration:<20} {reference:>12.0f} {measured:>12.0f} "
            f"{ratio:>7.2f}x{verdict}"
        )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the measured numbers as JSON (the CI artifact)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline JSON to gate against (no comparison when omitted)",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="write the measured numbers as a new baseline file and exit",
    )
    parser.add_argument(
        "--max-drop",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_MAX_DROP", "0.25")),
        help="maximum tolerated fractional drop vs the baseline "
             "(default 0.25, i.e. fail below 75%% of baseline)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=int(os.environ.get("REPRO_BENCH_ROUNDS", "3")),
        help="timing rounds per configuration, best-of (default 3)",
    )
    parser.add_argument(
        "--no-fast-path", action="store_true",
        help="force the reference simulation path (the gate must then fail)",
    )
    args = parser.parse_args(argv)

    throughput = measure(args.rounds, False if args.no_fast_path else None)
    sweep = measure_sweep(args.rounds, False if args.no_fast_path else None)
    ingest = measure_ingest(args.rounds, False if args.no_fast_path else None)
    document = {
        "meta": {
            "suite": SUITE,
            "benchmark": BENCHMARK,
            "length": LENGTH,
            "profile": PROFILE,
            "rounds": args.rounds,
            "fast_path": not args.no_fast_path,
            "python": platform.python_version(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        },
        "predictions_per_second": {
            name: round(value, 1) for name, value in throughput.items()
        },
        "sweep": {
            "base": SWEEP_BASE,
            "grid": {"oh_update_delay": SWEEP_DELAYS},
            "specs": len(SWEEP_DELAYS),
            "specs_per_second": round(sweep["sweep_specs_per_s"], 3),
            "specs_per_second_unshared": round(
                sweep["sweep_specs_per_s_unshared"], 3
            ),
            "specs_per_second_serial": round(
                sweep["sweep_specs_per_s_serial"], 3
            ),
        },
        "ingest": {
            "lines": INGEST_LINES,
            "chunk_branches": INGEST_CHUNK_BRANCHES,
            "streaming_configuration": STREAMING_CONFIGURATION,
            "ingest_branches_per_s": round(
                ingest["ingest_branches_per_s"], 1
            ),
            "streaming_branches_per_s": round(
                ingest["streaming_branches_per_s"], 1
            ),
        },
    }
    for destination in (args.output, args.write_baseline):
        if destination == "-":
            print(json.dumps(document, indent=2))
        elif destination:
            Path(destination).parent.mkdir(parents=True, exist_ok=True)
            Path(destination).write_text(
                json.dumps(document, indent=2) + "\n", encoding="utf-8"
            )
            print(f"wrote {destination}", file=sys.stderr)
    if args.write_baseline:
        return 0
    if args.baseline is None:
        if args.output == "-":
            return 0  # stdout is the JSON document; keep it parseable
        for name, value in throughput.items():
            print(f"{name:<20} {value:>12.0f} predictions/s")
        print(
            f"{'sweep (batched)':<20} {sweep['sweep_specs_per_s']:>12.2f} specs/s "
            f"({sweep['sweep_specs_per_s'] / sweep['sweep_specs_per_s_serial']:.2f}x "
            "vs per-cell)"
        )
        print(
            f"{'ingest':<20} {ingest['ingest_branches_per_s']:>12.0f} branches/s"
        )
        print(
            f"{'streaming simulate':<20} "
            f"{ingest['streaming_branches_per_s']:>12.0f} branches/s"
        )
        return 0

    baseline_doc = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
    regressions = compare(
        _gate_metrics(document), _gate_metrics(baseline_doc), args.max_drop
    )
    if regressions:
        print(
            f"FAIL: {regressions} configuration(s) regressed more than "
            f"{args.max_drop:.0%} vs {args.baseline}",
            file=sys.stderr,
        )
        print(
            "If the change is an intentional trade-off, refresh the baseline "
            "with --write-baseline (see docs/PERFORMANCE.md).",
            file=sys.stderr,
        )
        return 1
    print(f"OK: all configurations within {args.max_drop:.0%} of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
