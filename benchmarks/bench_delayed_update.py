"""Section 4.3.2: delayed update of the IMLI outer-history table.

Paper reference: delaying each branch's write into the IMLI history table by
up to 63 subsequent conditional branches (modelling a very large instruction
window) costs virtually nothing (0.002 MPKI).
"""

from __future__ import annotations

from benchmarks._harness import run_and_report


def test_delayed_update_is_essentially_free(benchmark, runners):
    result = run_and_report("delayed-update", runners, benchmark)
    rows = result.measured["results"]
    assert rows, "the experiment must produce at least one delay row"
    for _delay, immediate, _delayed, loss in rows:
        # The loss must be tiny compared with the IMLI benefit itself
        # (which is on the order of 0.5+ MPKI on these suites).
        assert abs(loss) < 0.25 * immediate
