"""Table 1: average MPKI for TAGE-GSC-based predictors (base, +L, +I, +I+L).

Paper reference (CBP4 / CBP3): 2.473/3.902, 2.365/3.670, 2.313/3.649,
2.226/3.555 MPKI at 228 / 256 / 234 / 261 Kbits.
"""

from __future__ import annotations

from benchmarks._harness import run_and_report


def test_table1_tage_gsc_configurations(benchmark, runners):
    result = run_and_report("table1", runners, benchmark)
    storage = result.measured["storage_kbits"]
    # Storage ordering of Table 1: base < +I < +L < +I+L.
    assert storage["tage-gsc"] < storage["tage-gsc+imli"] < storage["tage-gsc+l"]
    assert storage["tage-gsc+imli+l"] > storage["tage-gsc+l"]
    for suite_values in result.measured["average_mpki"].values():
        # Every augmented configuration beats the base; the combination wins.
        assert suite_values["tage-gsc+imli"] < suite_values["tage-gsc"]
        assert suite_values["tage-gsc+l"] < suite_values["tage-gsc"]
        assert suite_values["tage-gsc+imli+l"] <= min(
            suite_values["tage-gsc+imli"], suite_values["tage-gsc+l"]
        ) + 0.15
