"""Figures 8 and 9: IMLI-induced MPKI reduction on TAGE-GSC.

Paper reference: the IMLI components lower TAGE-GSC from 2.473 to 2.313
MPKI (CBP4, -6.8 %) and from 3.902 to 3.649 MPKI (CBP3, -6.1 %), with the
benefit concentrated on SPEC2K6-04, SPEC2K6-12, MM-4, CLIENT02, MM07, WS04
and WS03.
"""

from __future__ import annotations

from benchmarks._harness import run_and_report

PAPER_BENEFICIARIES = {"SPEC2K6-04", "SPEC2K6-12", "MM-4", "CLIENT02", "MM07", "WS04", "WS03"}


def test_fig8_all_benchmarks(benchmark, runners):
    result = run_and_report("fig8", runners, benchmark)
    averages = result.measured["average_mpki"]
    for suite_values in averages.values():
        assert suite_values["tage-gsc+imli"] < suite_values["tage-gsc"]


def test_fig9_most_benefitting_benchmarks(benchmark, runners):
    result = run_and_report("fig9", runners, benchmark)
    grouped = result.measured["per_benchmark_reduction"]
    top = sorted(
        grouped, key=lambda name: grouped[name]["imli-sic+oh"], reverse=True
    )[:5]
    # The paper's beneficiaries must dominate the top of the figure.
    present = PAPER_BENEFICIARIES & set(grouped)
    if present:
        assert PAPER_BENEFICIARIES & set(top)
