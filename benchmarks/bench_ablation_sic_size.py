"""Ablation: IMLI-SIC table size sweep (DESIGN.md section 6).

The paper fixes the IMLI-SIC table at 512 entries ("with a 512-entries
table, we capture most of the potential benefit").  This ablation sweeps the
table size on the benchmarks that benefit from IMLI-SIC and shows the
benefit saturating, which is the justification for the paper's choice.
"""

from __future__ import annotations

from benchmarks._harness import RESULTS_DIR, bench_length, bench_profile

from repro.analysis.tables import format_table
from repro.core.imli_sic import IMLISameIterationComponent
from repro.predictors.composites import _PROFILES  # noqa: SLF001 - ablation reuses the profile geometry
from repro.predictors.tage_gsc import TAGEGSCConfig, TAGEGSCPredictor
from repro.sim.engine import simulate
from repro.sim.metrics import average_mpki
from repro.workloads.suites import generate_suite

SIC_BENCHMARKS = ["SPEC2K6-04", "SPEC2K6-12"]
SIC_BENCHMARKS_CBP3 = ["WS04", "MM07"]
ENTRY_SWEEP = (64, 256, 1024)


def _traces():
    length = max(1500, bench_length() // 2)
    return generate_suite(
        "cbp4like", target_conditional_branches=length, benchmarks=SIC_BENCHMARKS
    ) + generate_suite(
        "cbp3like", target_conditional_branches=length, benchmarks=SIC_BENCHMARKS_CBP3
    )


def _sweep():
    sizes = _PROFILES[bench_profile()]
    traces = _traces()
    rows = []
    base_results = [
        simulate(
            TAGEGSCPredictor(TAGEGSCConfig(tage=sizes.tage, corrector=sizes.corrector)),
            trace,
        )
        for trace in traces
    ]
    rows.append(("no IMLI-SIC", 0, average_mpki(base_results)))
    for entries in ENTRY_SWEEP:
        results = [
            simulate(
                TAGEGSCPredictor(
                    TAGEGSCConfig(tage=sizes.tage, corrector=sizes.corrector),
                    extra_sc_components=[IMLISameIterationComponent(entries=entries)],
                    name=f"tage-gsc+sic{entries}",
                ),
                trace,
            )
            for trace in traces
        ]
        rows.append((f"IMLI-SIC {entries} entries", entries * 6, average_mpki(results)))
    return rows


def test_ablation_sic_table_size(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report = format_table(
        ["configuration", "SIC storage (bits)", "average MPKI"],
        rows,
        title="Ablation: IMLI-SIC table size (IMLI-SIC benchmarks only)",
    )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "ablation-sic-size.txt").write_text(report + "\n", encoding="utf-8")
    print()
    print(report)
    mpki_by_entries = {entries: mpki for _, entries, mpki in rows}
    # Any SIC table beats no SIC table on these benchmarks, and growing the
    # table never hurts much (the benefit saturates).
    assert mpki_by_entries[ENTRY_SWEEP[0] * 6] < mpki_by_entries[0]
    assert mpki_by_entries[ENTRY_SWEEP[-1] * 6] <= mpki_by_entries[ENTRY_SWEEP[0] * 6] + 0.1
