"""Section 4.2.2: the IMLI-SIC component alone.

Paper reference: IMLI-SIC lowers TAGE-GSC from 2.473 to 2.373 MPKI (CBP4)
and from 3.902 to 3.733 MPKI (CBP3); GEHL behaves similarly.  Once IMLI-SIC
is present, activating the loop predictor brings almost nothing (0.034 ->
0.013 MPKI on CBP4, 0.094 -> 0.010 MPKI on CBP3).
"""

from __future__ import annotations

from benchmarks._harness import run_and_report


def test_imli_sic_component(benchmark, runners):
    result = run_and_report("imli-sic", runners, benchmark)
    averages = result.measured["average_mpki"]
    for suite_values in averages.values():
        assert suite_values["tage-gsc+sic"] < suite_values["tage-gsc"]
        assert suite_values["gehl+sic"] < suite_values["gehl"]
    loop_benefit = result.measured["loop_benefit"]
    for suite in ("cbp4like", "cbp3like"):
        with_sic = loop_benefit.get(f"loop benefit with SIC ({suite})")
        without_sic = loop_benefit.get(f"loop benefit without SIC ({suite})")
        if with_sic is not None and without_sic is not None:
            assert with_sic <= without_sic + 0.2
