"""Ablation: IMLI-OH structure sweep (DESIGN.md section 6).

The paper uses a 1 Kbit IMLI history table (16 tracked branches x 64
iterations) and a 256-entry IMLI-OH prediction table.  This ablation sweeps
both on the wormhole-correlated benchmarks and also evaluates the optional
refinement of hashing the IMLI counter into global-history table indices
(Section 4.2).
"""

from __future__ import annotations

from benchmarks._harness import RESULTS_DIR, bench_length, bench_profile

from repro.analysis.tables import format_table
from repro.core.imli_oh import IMLIOuterHistoryComponent
from repro.predictors.composites import _PROFILES, CompositeOptions, build  # noqa: SLF001
from repro.predictors.tage_gsc import TAGEGSCConfig, TAGEGSCPredictor
from repro.sim.engine import simulate
from repro.sim.metrics import average_mpki
from repro.workloads.suites import generate_suite

WORMHOLE_BENCHMARKS_CBP4 = ["SPEC2K6-12", "MM-4"]
WORMHOLE_BENCHMARKS_CBP3 = ["CLIENT02", "MM07"]


def _traces():
    length = max(1500, bench_length() // 2)
    return generate_suite(
        "cbp4like", target_conditional_branches=length, benchmarks=WORMHOLE_BENCHMARKS_CBP4
    ) + generate_suite(
        "cbp3like", target_conditional_branches=length, benchmarks=WORMHOLE_BENCHMARKS_CBP3
    )


def _average(traces, predictor_factory):
    return average_mpki([simulate(predictor_factory(), trace) for trace in traces])


def _sweep():
    sizes = _PROFILES[bench_profile()]
    config = TAGEGSCConfig(tage=sizes.tage, corrector=sizes.corrector)
    traces = _traces()
    rows = [("no IMLI-OH", _average(traces, lambda: TAGEGSCPredictor(config)))]
    for prediction_entries, tracked in ((128, 16), (256, 16), (256, 64), (512, 64)):
        rows.append(
            (
                f"IMLI-OH {prediction_entries} entries, {tracked} tracked branches",
                _average(
                    traces,
                    lambda: TAGEGSCPredictor(
                        config,
                        extra_sc_components=[
                            IMLIOuterHistoryComponent(
                                prediction_entries=prediction_entries,
                                tracked_branches=tracked,
                            )
                        ],
                    ),
                ),
            )
        )
    rows.append(
        (
            "IMLI (SIC+OH) + IMLI-hashed global tables",
            _average(
                traces,
                lambda: build(
                    CompositeOptions(
                        base="tage-gsc", imli_sic=True, imli_oh=True, imli_global_tables=2
                    ),
                    profile=bench_profile(),
                ),
            ),
        )
    )
    return rows


def test_ablation_oh_geometry(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report = format_table(
        ["configuration", "average MPKI"],
        rows,
        title="Ablation: IMLI-OH geometry (wormhole-correlated benchmarks only)",
    )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "ablation-oh-geometry.txt").write_text(report + "\n", encoding="utf-8")
    print()
    print(report)
    baseline = rows[0][1]
    best = min(mpki for _, mpki in rows[1:])
    assert best < baseline
