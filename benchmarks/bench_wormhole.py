"""Sections 3.3 and 4.3: the wormhole side predictor on top of TAGE-GSC / GEHL.

Paper reference: WH reduces average MPKI by about 2.2-2.5 %, with the whole
benefit concentrated on four benchmarks (SPEC2K6-12, MM-4, CLIENT02, MM07);
WH still adds a little on top of IMLI-SIC.
"""

from __future__ import annotations

from benchmarks._harness import run_and_report


def test_wormhole_side_predictor(benchmark, runners):
    result = run_and_report("wormhole", runners, benchmark)
    averages = result.measured["average_mpki"]
    for suite_values in averages.values():
        # WH must not hurt the averages and must help at least one suite.
        assert suite_values["tage-gsc+wh"] <= suite_values["tage-gsc"] * 1.02
    improved = result.measured["most_improved"]
    assert any(delta > 0.5 for delta in improved.values())
