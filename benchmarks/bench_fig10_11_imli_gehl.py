"""Figures 10 and 11: IMLI-induced MPKI reduction on GEHL.

Paper reference: the IMLI components lower GEHL from 2.864 to 2.694 MPKI
(CBP4, -6.0 %) and from 4.243 to 3.958 MPKI (CBP3, -6.5 %); the same
benchmarks benefit as with TAGE-GSC.
"""

from __future__ import annotations

from benchmarks._harness import run_and_report


def test_fig10_all_benchmarks(benchmark, runners):
    result = run_and_report("fig10", runners, benchmark)
    averages = result.measured["average_mpki"]
    for suite_values in averages.values():
        assert suite_values["gehl+imli"] < suite_values["gehl"]


def test_fig11_most_benefitting_benchmarks(benchmark, runners):
    result = run_and_report("fig11", runners, benchmark)
    grouped = result.measured["per_benchmark_reduction"]
    assert grouped, "per-benchmark reductions must not be empty"
    best = max(value["imli-sic+oh"] for value in grouped.values())
    assert best > 0
