"""Pytest fixtures for the benchmark harness (see _harness.py for knobs)."""

from __future__ import annotations

from typing import Dict

import pytest

from repro.sim.runner import SuiteRunner

from benchmarks._harness import build_runners


@pytest.fixture(scope="session")
def runners() -> Dict[str, SuiteRunner]:
    """One memoising runner per synthetic suite, shared by every benchmark."""
    return build_runners()
