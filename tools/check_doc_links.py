#!/usr/bin/env python
"""Check that every internal link in the repo's markdown docs resolves.

Two kinds of references are checked in ``README.md`` and ``docs/*.md``:

* markdown links ``[text](target)`` whose target is not an external URL
  (``http://``, ``https://``, ``mailto:``) -- the target path, with any
  ``#fragment`` stripped, must exist;
* backtick references to repo paths (````docs/API.md```` and friends) --
  the docs cross-reference each other, source files and tests this way,
  so a rename must fail CI rather than leave dangling prose.

A target resolves if it exists relative to the referencing file's
directory or to the repo root.  Exits non-zero listing every broken
reference; run from anywhere (the repo root is located from this file).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` -- non-greedy so adjacent links split correctly.
MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Backticked repo paths: at least one ``/`` and a known text/source
#: suffix, so prose like `pc`/`repro.sim.engine` is not mistaken for one.
BACKTICK_PATH = re.compile(r"`([A-Za-z0-9_.-]+(?:/[A-Za-z0-9_.-]+)+\.(?:md|py|json|toml|yml))`")

EXTERNAL = ("http://", "https://", "mailto:")


def _documents():
    yield REPO_ROOT / "README.md"
    yield from sorted((REPO_ROOT / "docs").glob("*.md"))


def _resolves(target: str, source: Path) -> bool:
    path = target.split("#", 1)[0]
    if not path:  # pure in-page anchor
        return True
    return (source.parent / path).exists() or (REPO_ROOT / path).exists()


def check() -> list:
    """Return ``(file, line, reference)`` tuples for every broken link."""
    broken = []
    for document in _documents():
        for number, line in enumerate(document.read_text().splitlines(), start=1):
            references = [
                target
                for target in MARKDOWN_LINK.findall(line)
                if not target.startswith(EXTERNAL)
            ]
            references += BACKTICK_PATH.findall(line)
            for target in references:
                if not _resolves(target, document):
                    broken.append((document.relative_to(REPO_ROOT), number, target))
    return broken


def main() -> int:
    """CLI entry point: print broken references, exit 1 if any."""
    broken = check()
    for document, line, target in broken:
        print(f"{document}:{line}: broken reference {target!r}")
    if broken:
        print(f"{len(broken)} broken doc reference(s)", file=sys.stderr)
        return 1
    print(f"doc links OK ({sum(1 for _ in _documents())} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
